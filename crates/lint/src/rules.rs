//! The token-level rules: **D1** (nondeterminism sources), **P1**
//! (panicking calls), **F1** (bare float comparisons), **U1** (unsafe),
//! **A1** (escape-hatch hygiene).
//!
//! The engine walks the flat token stream from [`crate::lexer`] with a
//! lightweight region tracker that understands just enough structure to
//! skip `#[cfg(test)]` / `#[test]` items: attributes set a *pending*
//! flag that either opens a skip region at the item's `{` or cancels at
//! its `;`. D1/P1/F1 apply to library code only; U1 applies everywhere.

use crate::config::{known_rule, Config, Level};
use crate::lexer::{Lexed, Token, TokenKind};
use crate::Diagnostic;

/// How the driver classified a file; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code shipped to dependents: all rules apply.
    Library,
    /// Binary / build-script code (`src/bin/`, `main.rs`, `build.rs`):
    /// D1/P1/F1 exempt — binaries own their I/O and may abort.
    Binary,
    /// Tests, benches, examples and `#[cfg(test)]`-only modules:
    /// D1/P1/F1 exempt.
    Test,
}

/// Scans for `#[cfg(test)] mod NAME;` declarations — the files those
/// pull in (sibling `NAME.rs` / `NAME/mod.rs`) are test-only even
/// though nothing inside them says so. The driver runs this pass over
/// every file first, then classifies.
pub fn test_module_decls(lexed: &Lexed) -> Vec<String> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if let Some((is_test, _inner, end)) = parse_attr(toks, i) {
            if is_test {
                // Skip any further attributes between the cfg and the item.
                let mut j = end;
                while let Some((_, _, e2)) = parse_attr(toks, j) {
                    j = e2;
                }
                if text(toks, j) == Some("pub") {
                    j += 1;
                }
                if text(toks, j) == Some("mod") {
                    if let (Some(name), Some(";")) = (text(toks, j + 1), text(toks, j + 2)) {
                        out.push(name.to_string());
                    }
                }
            }
            i = end;
            continue;
        }
        i += 1;
    }
    out
}

fn text(toks: &[Token], i: usize) -> Option<&str> {
    toks.get(i).map(|t| t.text.as_str())
}

fn kind(toks: &[Token], i: usize) -> Option<TokenKind> {
    toks.get(i).map(|t| t.kind)
}

/// If `toks[i]` starts an attribute (`#[…]` or `#![…]`), returns
/// `(mentions cfg-test or #[test], is inner, index past the closing ])`.
pub(crate) fn parse_attr(toks: &[Token], i: usize) -> Option<(bool, bool, usize)> {
    if text(toks, i) != Some("#") {
        return None;
    }
    let mut j = i + 1;
    let inner = text(toks, j) == Some("!");
    if inner {
        j += 1;
    }
    if kind(toks, j) != Some(TokenKind::Open) || text(toks, j) != Some("[") {
        return None;
    }
    let mut depth = 0usize;
    let mut first_ident: Option<&str> = None;
    let mut saw_test = false;
    while j < toks.len() {
        match kind(toks, j) {
            Some(TokenKind::Open) => depth += 1,
            Some(TokenKind::Close) => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Some(TokenKind::Ident) => {
                if let Some(tok) = toks.get(j) {
                    if first_ident.is_none() {
                        first_ident = Some(tok.text.as_str());
                    }
                    if tok.text == "test" {
                        saw_test = true;
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    // `#[test]`, `#[cfg(test)]`, `#[cfg(any(test, …))]` all count; a
    // stray ident `test` under a non-cfg attr (`#[doc = …]`) does not.
    let is_test = match first_ident {
        Some("cfg") | Some("cfg_attr") => saw_test,
        Some("test") => true,
        _ => false,
    };
    Some((is_test, inner, j + 1))
}

/// Runs D1/P1/F1/U1/A1 over one lexed file, applies the escape hatch
/// and drops allow-level findings — the single-file convenience entry.
/// The workspace driver instead uses [`scan_tokens`] +
/// [`apply_directives`] so semantic diagnostics (P2/D2) participate in
/// suppression and stale-directive (A2) accounting.
pub fn lint_tokens(
    path: &str,
    lexed: &Lexed,
    file_kind: FileKind,
    cfg: &Config,
) -> Vec<Diagnostic> {
    let raw = scan_tokens(path, lexed, file_kind, cfg);
    let (mut kept, a2) = apply_directives(path, lexed, raw, cfg);
    kept.extend(a2);
    kept.retain(|d| d.level != Level::Allow);
    kept
}

/// Runs the token rules over one lexed file and returns *raw*
/// diagnostics: no directive suppression applied, allow-level findings
/// included (the driver needs them for usage accounting).
pub fn scan_tokens(
    path: &str,
    lexed: &Lexed,
    file_kind: FileKind,
    cfg: &Config,
) -> Vec<Diagnostic> {
    let mut raw: Vec<Diagnostic> = Vec::new();
    let toks = &lexed.tokens;
    let timing = cfg.is_timing_module(path);

    // ---- region tracking state ----
    let mut brace_depth: i64 = 0;
    let mut delim_depth: i64 = 0; // ( and [ nesting, for attr-pending cancel
    let mut skip_stack: Vec<i64> = Vec::new(); // brace_depth at region open
    let mut file_test = false;
    // (brace_depth, delim_depth) where a test attribute was seen.
    let mut pending: Option<(i64, i64)> = None;

    let emit = |rule: &str, t: &Token, message: String, out: &mut Vec<Diagnostic>| {
        let level = cfg.level(rule);
        out.push(Diagnostic {
            rule: rule.to_string(),
            level,
            path: path.to_string(),
            line: t.line,
            col: t.col,
            message,
        });
    };

    let mut i = 0usize;
    while i < toks.len() {
        // Attributes first: they drive the skip regions.
        if let Some((is_test, inner, end)) = parse_attr(toks, i) {
            if is_test {
                if inner {
                    if brace_depth == 0 {
                        file_test = true;
                    } else {
                        // `{ #![cfg(test)] … }`: region lasts until the
                        // enclosing block closes.
                        skip_stack.push(brace_depth - 1);
                    }
                } else {
                    pending = Some((brace_depth, delim_depth));
                }
            }
            i = end;
            continue;
        }

        let Some(t) = toks.get(i) else { break };
        let in_test = file_test || !skip_stack.is_empty();
        let lib = file_kind == FileKind::Library && !in_test;

        match t.kind {
            TokenKind::Open => {
                if t.text == "{" {
                    if let Some((bd, dd)) = pending {
                        if bd == brace_depth && dd == delim_depth {
                            skip_stack.push(brace_depth);
                            pending = None;
                        }
                    }
                    brace_depth += 1;
                } else {
                    delim_depth += 1;
                }
            }
            TokenKind::Close => {
                if t.text == "}" {
                    brace_depth -= 1;
                    while matches!(skip_stack.last(), Some(&d) if brace_depth <= d) {
                        skip_stack.pop();
                    }
                } else {
                    delim_depth -= 1;
                }
            }
            TokenKind::Punct if t.text == ";" => {
                if let Some((bd, dd)) = pending {
                    if bd == brace_depth && dd == delim_depth {
                        pending = None; // e.g. `#[cfg(test)] mod tests;`
                    }
                }
            }
            TokenKind::Ident => {
                let word = t.text.as_str();
                // U1: everywhere, every file kind.
                if word == "unsafe" {
                    emit(
                        "U1",
                        t,
                        "`unsafe` is forbidden workspace-wide (rustc forbids it too; \
                         there is no demt-lint escape hatch for U1)"
                            .to_string(),
                        &mut raw,
                    );
                }
                if lib {
                    // P1: panicking calls in library code.
                    let prev_dot = i > 0 && text(toks, i - 1) == Some(".");
                    let next_paren = text(toks, i + 1) == Some("(");
                    if prev_dot && next_paren && (word == "unwrap" || word == "expect") {
                        emit(
                            "P1",
                            t,
                            format!(
                                "`.{word}()` in library code: return a typed error \
                                 (the ListError/OnlineError pattern) or justify with \
                                 `// demt-lint: allow(P1, reason)`"
                            ),
                            &mut raw,
                        );
                    }
                    let next_bang = text(toks, i + 1) == Some("!");
                    if next_bang && matches!(word, "panic" | "unimplemented" | "todo") {
                        emit(
                            "P1",
                            t,
                            format!(
                                "`{word}!` in library code: return a typed error or \
                                 justify with `// demt-lint: allow(P1, reason)`"
                            ),
                            &mut raw,
                        );
                    }
                    // D1: nondeterminism sources.
                    if word == "HashMap" || word == "HashSet" {
                        emit(
                            "D1",
                            t,
                            format!(
                                "`{word}` iterates in a nondeterministic order: use \
                                 `BTreeMap`/`BTreeSet` or a sorted Vec in scheduling \
                                 and reporting paths"
                            ),
                            &mut raw,
                        );
                    }
                    let path2 = || {
                        (
                            text(toks, i + 1) == Some("::"),
                            text(toks, i + 2).unwrap_or(""),
                        )
                    };
                    if !timing {
                        if word == "Instant" {
                            let (sep, m) = path2();
                            if sep && m == "now" {
                                emit(
                                    "D1",
                                    t,
                                    "`Instant::now()` outside the designated timing \
                                     modules (lint.toml [paths].timing): wall-clock \
                                     reads make schedules irreproducible"
                                        .to_string(),
                                    &mut raw,
                                );
                            }
                        }
                        if word == "SystemTime" {
                            emit(
                                "D1",
                                t,
                                "`SystemTime` outside the designated timing modules \
                                 (lint.toml [paths].timing)"
                                    .to_string(),
                                &mut raw,
                            );
                        }
                    }
                    if word == "thread" {
                        let (sep, m) = path2();
                        if sep && m == "current" {
                            emit(
                                "D1",
                                t,
                                "`thread::current()` identity must not influence \
                                 scheduling order or output"
                                    .to_string(),
                                &mut raw,
                            );
                        }
                    }
                }
            }
            TokenKind::Punct if (t.text == "==" || t.text == "!=") && lib => {
                // F1: a float literal on either side of ==/!=.
                let prev_float = i > 0 && kind(toks, i - 1) == Some(TokenKind::Float);
                let next_float = kind(toks, i + 1) == Some(TokenKind::Float)
                    || (text(toks, i + 1) == Some("-")
                        && kind(toks, i + 2) == Some(TokenKind::Float));
                if prev_float || next_float {
                    emit(
                        "F1",
                        t,
                        format!(
                            "bare float `{}` against a literal: compare through a \
                             tolerance helper, or justify exact-representation \
                             semantics with `// demt-lint: allow(F1, reason)`",
                            t.text
                        ),
                        &mut raw,
                    );
                }
            }
            _ => {}
        }
        i += 1;
    }

    // Malformed or reason-less directives become A1 diagnostics here;
    // the *valid* ones are applied by [`apply_directives`].
    for d in &lexed.directives {
        match (&d.rule, &d.reason) {
            (Some(rule), Some(_)) if known_rule(rule) && rule != "U1" => {}
            _ => {
                let what = match &d.rule {
                    None => "expected `// demt-lint: allow(RULE, reason)`".to_string(),
                    Some(r) if !known_rule(r) => format!("unknown rule id `{r}`"),
                    Some(r) if r == "U1" => "U1 cannot be allowed".to_string(),
                    Some(r) => format!("allow({r}) needs a reason string"),
                };
                raw.push(Diagnostic {
                    rule: "A1".to_string(),
                    level: cfg.level("A1"),
                    path: path.to_string(),
                    line: d.line,
                    col: 1,
                    message: format!("malformed demt-lint directive: {what}"),
                });
            }
        }
    }
    raw
}

/// The escape hatch, with usage accounting. A valid directive
/// suppresses matching diagnostics on its own line (trailing comment)
/// and on the following line (comment above the code); U1 is never
/// suppressible. Returns the surviving diagnostics plus one **A2**
/// finding per valid directive that suppressed nothing — a stale
/// `allow(…)` is itself a defect, because it silently licenses a
/// violation that could reappear later. `raw` must contain *every*
/// diagnostic for `path` (token and semantic), or live directives
/// would be misreported as stale.
pub fn apply_directives(
    path: &str,
    lexed: &Lexed,
    raw: Vec<Diagnostic>,
    cfg: &Config,
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    let mut suppress: Vec<(&str, u32, usize)> = Vec::new(); // (rule, line, hits)
    for d in &lexed.directives {
        if let (Some(rule), Some(_)) = (&d.rule, &d.reason) {
            if known_rule(rule) && rule != "U1" {
                suppress.push((rule.as_str(), d.line, 0));
            }
        }
    }
    let kept: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|diag| {
            let mut hit = false;
            for (rule, line, hits) in suppress.iter_mut() {
                if *rule == diag.rule && (diag.line == *line || diag.line == *line + 1) {
                    *hits += 1;
                    hit = true;
                }
            }
            !hit
        })
        .collect();
    let a2: Vec<Diagnostic> = suppress
        .iter()
        .filter(|(_, _, hits)| *hits == 0)
        .map(|(rule, line, _)| Diagnostic {
            rule: "A2".to_string(),
            level: cfg.level("A2"),
            path: path.to_string(),
            line: *line,
            col: 1,
            message: format!(
                "stale suppression: `allow({rule}, …)` matches no {rule} finding \
                 on this or the next line — delete the directive (or fix the \
                 scope it was meant to cover)"
            ),
        })
        .collect();
    (kept, a2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, kind: FileKind) -> Vec<Diagnostic> {
        lint_tokens("x.rs", &lex(src), kind, &Config::default())
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn p1_fires_in_library_only() {
        let src = "pub fn f(v: &[u32]) -> u32 { *v.first().unwrap() }";
        assert_eq!(rules_of(&run(src, FileKind::Library)), vec!["P1"]);
        assert!(run(src, FileKind::Binary).is_empty());
        assert!(run(src, FileKind::Test).is_empty());
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let src = r#"
pub fn ok() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { None::<u32>.unwrap(); panic!("boom"); }
}
"#;
        assert!(run(src, FileKind::Library).is_empty());
    }

    #[test]
    fn cfg_test_on_a_single_fn() {
        let src = r#"
#[cfg(test)]
fn helper() { None::<u32>.unwrap(); }
pub fn live() { None::<u32>.unwrap(); }
"#;
        let d = run(src, FileKind::Library);
        assert_eq!(rules_of(&d), vec!["P1"]);
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn cfg_test_mod_semicolon_cancels_pending() {
        let src = "#[cfg(test)]\nmod tests;\npub fn f() { None::<u32>.unwrap(); }";
        assert_eq!(rules_of(&run(src, FileKind::Library)), vec!["P1"]);
        let decls = test_module_decls(&lex(src));
        assert_eq!(decls, vec!["tests".to_string()]);
    }

    #[test]
    fn d1_catches_hash_collections_and_clocks() {
        let src = r#"
use std::collections::HashMap;
pub fn f() {
    let t = std::time::Instant::now();
    let s = std::time::SystemTime::now();
    let id = std::thread::current().id();
}
"#;
        let d = run(src, FileKind::Library);
        assert_eq!(rules_of(&d), vec!["D1", "D1", "D1", "D1"]);
    }

    #[test]
    fn timing_modules_may_read_clocks_but_not_hash() {
        let mut cfg = Config::default();
        cfg.timing.push("x.rs".to_string());
        let src = "pub fn f() { let t = Instant::now(); let m: HashMap<u32, u32> = panic!(); }";
        let d = lint_tokens("x.rs", &lex(src), FileKind::Library, &cfg);
        assert_eq!(rules_of(&d), vec!["D1", "P1"]); // HashMap + panic!, no clock
    }

    #[test]
    fn f1_catches_literal_comparisons_only() {
        let src = r#"
pub fn f(a: f64, b: f64) -> bool {
    let bad1 = a == 1.0;
    let bad2 = 0.5 != b;
    let bad3 = a == -2.0;
    let ok1 = (a - b).abs() < 1e-9;
    let ok2 = a.to_bits() == b.to_bits();
    bad1 && bad2 && bad3 && ok1 && ok2
}
"#;
        let d = run(src, FileKind::Library);
        assert_eq!(rules_of(&d), vec!["F1", "F1", "F1"]);
    }

    #[test]
    fn u1_fires_everywhere_and_cannot_be_allowed() {
        let src = "fn f() { unsafe { } } // demt-lint: allow(U1, nope)";
        for kind in [FileKind::Library, FileKind::Binary, FileKind::Test] {
            let d = run(src, kind);
            assert!(d.iter().any(|x| x.rule == "U1"), "{kind:?}");
            assert!(d.iter().any(|x| x.rule == "A1"), "{kind:?}");
        }
    }

    #[test]
    fn allow_suppresses_same_line_and_next_line() {
        let trailing =
            "pub fn f(v: &[u32]) -> u32 { *v.first().unwrap() } // demt-lint: allow(P1, seeded by caller)";
        assert!(run(trailing, FileKind::Library).is_empty());
        let above = "// demt-lint: allow(P1, seeded by caller)\npub fn f(v: &[u32]) -> u32 { *v.first().unwrap() }";
        assert!(run(above, FileKind::Library).is_empty());
        // A directive for the wrong rule suppresses nothing — the P1
        // still fires AND the directive itself is stale (A2).
        let wrong_rule =
            "pub fn f(v: &[u32]) -> u32 { *v.first().unwrap() } // demt-lint: allow(F1, wrong id)";
        assert_eq!(
            rules_of(&run(wrong_rule, FileKind::Library)),
            vec!["P1", "A2"]
        );
    }

    #[test]
    fn stale_directives_are_a2() {
        let src = "// demt-lint: allow(P1, legacy justification)\npub fn ok() -> u32 { 1 }";
        let d = run(src, FileKind::Library);
        assert_eq!(rules_of(&d), vec!["A2"]);
        assert_eq!(d[0].line, 1, "anchored at the directive");
    }

    #[test]
    fn allow_without_reason_is_a1_and_does_not_suppress() {
        let src = "pub fn f(v: &[u32]) -> u32 { *v.first().unwrap() } // demt-lint: allow(P1)";
        let d = run(src, FileKind::Library);
        let mut r = rules_of(&d);
        r.sort_unstable();
        assert_eq!(r, vec!["A1", "P1"]);
    }

    #[test]
    fn should_panic_attr_is_not_p1() {
        let src = "#[should_panic]\nfn not_a_macro() {}";
        assert!(run(src, FileKind::Library).is_empty());
    }

    #[test]
    fn warn_level_keeps_diagnostic_but_marks_it() {
        let mut cfg = Config::default();
        cfg.levels.insert("P1".to_string(), Level::Warn);
        let d = lint_tokens(
            "x.rs",
            &lex("pub fn f() { None::<u32>.unwrap(); }"),
            FileKind::Library,
            &cfg,
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].level, Level::Warn);
    }
}
