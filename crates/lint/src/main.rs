//! `demt-lint` — standalone binary; `demt lint` routes here too.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(demt_lint::lint_cli(&args));
}
