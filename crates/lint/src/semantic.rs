//! The semantic pass: symbol table + call graph + the rules that need
//! them (**P2** transitive panic reachability, **D2** order-sensitive
//! float accumulation), plus the module-tree file classifier.
//!
//! The classifier replaces the old purely path-based heuristic, which
//! mislabeled `src/main.rs`-adjacent `mod` files as library code: a
//! file's kind is now inherited from the *crate root that declares it*
//! (`src/lib.rs` → library, `src/main.rs` / `src/bin/*` / `build.rs` →
//! binary, `tests/` / `benches/` / `examples/` → test), following
//! `mod` declarations through the module tree, with `#[cfg(test)]`
//! declarations forcing the target to test kind.

use crate::callgraph::{CallGraph, Reachability};
use crate::config::Config;
use crate::parser::{Floatness, ParsedFile, Vis};
use crate::rules::FileKind;
use crate::symbols::{FileInput, SymbolTable};
use crate::Diagnostic;
use std::collections::BTreeMap;

/// The semantic pass output: everything downstream consumers (P2/D2
/// diagnostics, the `--callgraph` report) need.
#[derive(Debug)]
pub struct Semantic {
    /// The workspace symbol table.
    pub table: SymbolTable,
    /// The call graph over it.
    pub graph: CallGraph,
    /// Panic reachability per symbol.
    pub reach: Reachability,
}

/// Builds table, graph and reachability in one shot.
pub fn analyze(files: Vec<FileInput>, cfg: &Config) -> Semantic {
    let table = SymbolTable::build(files);
    let graph = CallGraph::build(&table, cfg.p2_index_edges);
    let reach = graph.reach();
    Semantic {
        table,
        graph,
        reach,
    }
}

/// **P2**: every `pub` library fn whose panic distance is ≥ 1 — it does
/// not panic itself (that is P1's domain) but *reaches* a panic site
/// through at least one call edge. Each diagnostic is paired with the
/// fn's symbol key, the identity the `panic_reach.toml` baseline
/// speaks.
pub fn p2_diagnostics(sem: &Semantic, cfg: &Config) -> Vec<(String, Diagnostic)> {
    let level = cfg.level("P2");
    let mut out = Vec::new();
    for (id, sym) in sem.table.fns.iter().enumerate() {
        if sym.vis != Vis::Pub || sym.kind != FileKind::Library || sym.cfg_test {
            continue;
        }
        let Some(dist) = sem.reach.dist.get(id).copied().flatten() else {
            continue;
        };
        if dist < 1 {
            continue;
        }
        let evidence = sem.graph.evidence(&sem.table, &sem.reach, id);
        out.push((
            sym.key.clone(),
            Diagnostic {
                rule: "P2".to_string(),
                level,
                path: sym.rel.clone(),
                line: sym.line,
                col: sym.col,
                message: format!(
                    "pub fn `{}` can transitively reach a panic site: {evidence}; \
                     convert the path to a typed Result, annotate \
                     `// demt-lint: allow(P2, reason)`, or record the fn in the \
                     panic_reach.toml baseline",
                    sym.key
                ),
            },
        ));
    }
    out
}

/// **D2**: `fold`/`sum`/`product` chains in library code whose element
/// type may be floating point and whose iteration source carries no
/// ordered-evidence. Float addition is not associative, so an
/// accumulation whose visit order can vary (an opaque iterator, a
/// parallel source) silently breaks the byte-identical-reports
/// guarantee.
pub fn d2_diagnostics(sem: &Semantic, cfg: &Config) -> Vec<Diagnostic> {
    let level = cfg.level("D2");
    let mut out = Vec::new();
    for (id, sym) in sem.table.fns.iter().enumerate() {
        if sym.kind != FileKind::Library || sym.cfg_test {
            continue;
        }
        let Some(def) = sem.table.def_of(id) else {
            continue;
        };
        for acc in &def.body.accums {
            if acc.floatness == Floatness::Int || acc.ordered {
                continue;
            }
            out.push(Diagnostic {
                rule: "D2".to_string(),
                level,
                path: sym.rel.clone(),
                line: acc.line,
                col: acc.col,
                message: format!(
                    "`.{}` over a possibly-float iterator with no provably-ordered \
                     source: float accumulation is order-sensitive; iterate an \
                     ordered source (`.iter()` on a slice/BTree collection, a \
                     range, or a `[d2] ordered_sources` whitelisted reduction) or \
                     justify with `// demt-lint: allow(D2, reason)`",
                    acc.what
                ),
            });
        }
    }
    out
}

/// Classifies every workspace file by walking the module tree from the
/// crate roots. Files no root reaches (orphans, fixture snippets) are
/// absent from the returned map; the caller falls back to the path
/// heuristic.
pub fn classify_workspace(files: &[(String, ParsedFile)]) -> BTreeMap<String, FileKind> {
    let index: BTreeMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, (rel, _))| (rel.as_str(), i))
        .collect();
    let mut kinds: Vec<Option<FileKind>> = vec![None; files.len()];
    let mut work: Vec<usize> = Vec::new();
    for (i, (rel, _)) in files.iter().enumerate() {
        if let Some(kind) = root_kind(rel) {
            kinds[i] = Some(kind);
            work.push(i);
        }
    }
    while let Some(i) = work.pop() {
        let Some(kind) = kinds.get(i).copied().flatten() else {
            continue;
        };
        let Some((rel, parsed)) = files.get(i) else {
            continue;
        };
        let dir = child_dir(rel);
        for m in &parsed.mods {
            let target_kind = if m.cfg_test { FileKind::Test } else { kind };
            for cand in [
                format!("{dir}{}.rs", m.name),
                format!("{dir}{}/mod.rs", m.name),
            ] {
                if let Some(&t) = index.get(cand.as_str()) {
                    if rank(target_kind) > kinds[t].map(rank).unwrap_or(0) {
                        kinds[t] = Some(target_kind);
                        work.push(t);
                    }
                }
            }
        }
    }
    files
        .iter()
        .zip(kinds)
        .filter_map(|((rel, _), k)| k.map(|k| (rel.clone(), k)))
        .collect()
}

/// Precedence when a file is reachable from several roots: library
/// rules are the strictest, so library wins; a plain declaration from
/// a binary root beats a `#[cfg(test)]` one.
fn rank(kind: FileKind) -> u8 {
    match kind {
        FileKind::Library => 3,
        FileKind::Binary => 2,
        FileKind::Test => 1,
    }
}

/// Is `rel` a crate-root-kind file (its child modules live in its own
/// directory rather than a subdirectory named after it)?
fn root_kind(rel: &str) -> Option<FileKind> {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples"))
    {
        return Some(FileKind::Test);
    }
    if rel.ends_with("src/lib.rs") || rel == "lib.rs" {
        return Some(FileKind::Library);
    }
    if rel.ends_with("src/main.rs") || rel.ends_with("build.rs") {
        return Some(FileKind::Binary);
    }
    let n = parts.len();
    if n >= 2 && parts.get(n.wrapping_sub(2)) == Some(&"bin") {
        return Some(FileKind::Binary);
    }
    None
}

/// The directory (with trailing `/`) where `rel`'s child modules live.
fn child_dir(rel: &str) -> String {
    let (dir, file) = match rel.rsplit_once('/') {
        Some((d, f)) => (format!("{d}/"), f),
        None => (String::new(), rel),
    };
    let rootish = matches!(file, "lib.rs" | "main.rs" | "mod.rs" | "build.rs")
        || dir.ends_with("bin/")
        || dir.ends_with("tests/")
        || dir.ends_with("benches/")
        || dir.ends_with("examples/");
    if rootish {
        dir
    } else {
        format!("{dir}{}/", file.strip_suffix(".rs").unwrap_or(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn ws(files: &[(&str, &str)]) -> BTreeMap<String, FileKind> {
        let parsed: Vec<(String, ParsedFile)> = files
            .iter()
            .map(|(rel, src)| (rel.to_string(), parse(&lex(src))))
            .collect();
        classify_workspace(&parsed)
    }

    #[test]
    fn binary_root_mods_are_binary_not_library() {
        // The bug this classifier fixes: helper.rs next to main.rs used
        // to classify as Library under the path heuristic.
        let kinds = ws(&[
            ("crates/tool/src/main.rs", "mod helper;\nfn main() {}"),
            ("crates/tool/src/helper.rs", "pub fn go() {}"),
        ]);
        assert_eq!(
            kinds.get("crates/tool/src/helper.rs"),
            Some(&FileKind::Binary)
        );
    }

    #[test]
    fn library_wins_when_shared_with_a_binary_root() {
        let kinds = ws(&[
            ("crates/x/src/lib.rs", "mod shared;"),
            ("crates/x/src/main.rs", "mod shared;\nfn main() {}"),
            ("crates/x/src/shared.rs", "pub fn go() {}"),
        ]);
        assert_eq!(
            kinds.get("crates/x/src/shared.rs"),
            Some(&FileKind::Library)
        );
    }

    #[test]
    fn cfg_test_decls_force_test_kind_transitively() {
        let kinds = ws(&[
            (
                "crates/x/src/lib.rs",
                "#[cfg(test)]\nmod testutil;\nmod real;",
            ),
            ("crates/x/src/testutil/mod.rs", "mod deeper;"),
            ("crates/x/src/testutil/deeper.rs", ""),
            ("crates/x/src/real.rs", "mod nested;"),
            ("crates/x/src/real/nested.rs", ""),
        ]);
        assert_eq!(
            kinds.get("crates/x/src/testutil/mod.rs"),
            Some(&FileKind::Test)
        );
        assert_eq!(
            kinds.get("crates/x/src/testutil/deeper.rs"),
            Some(&FileKind::Test)
        );
        assert_eq!(
            kinds.get("crates/x/src/real/nested.rs"),
            Some(&FileKind::Library)
        );
    }

    #[test]
    fn tests_dir_and_orphans() {
        let kinds = ws(&[
            ("crates/x/tests/it.rs", "mod common;"),
            ("crates/x/tests/common.rs", ""),
            ("crates/x/src/orphan.rs", "pub fn lonely() {}"),
        ]);
        assert_eq!(kinds.get("crates/x/tests/it.rs"), Some(&FileKind::Test));
        assert_eq!(kinds.get("crates/x/tests/common.rs"), Some(&FileKind::Test));
        assert_eq!(
            kinds.get("crates/x/src/orphan.rs"),
            None,
            "caller falls back"
        );
    }

    #[test]
    fn bin_dir_roots_declare_siblings() {
        let kinds = ws(&[
            ("src/bin/demt.rs", "mod cli;\nfn main() {}"),
            ("src/bin/cli.rs", "pub fn parse() {}"),
        ]);
        assert_eq!(kinds.get("src/bin/cli.rs"), Some(&FileKind::Binary));
    }
}
