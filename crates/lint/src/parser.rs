//! A hand-rolled recursive-descent parser: token stream → items.
//!
//! Sits on [`crate::lexer`] and recovers just enough structure for the
//! semantic rules: `use` declarations (for path resolution), `mod`
//! declarations (for the module-tree classifier), and every `fn` —
//! free, inherent, trait-default or trait-impl — with its visibility,
//! owner type and a *body scan*: the stream of call expressions, direct
//! panic sites, indexing sites and float-accumulation chains inside the
//! body. It is **tolerant by construction**: unknown constructs are
//! skipped token-by-token, unbalanced delimiters run to end of file,
//! and nothing here can panic (the linter lints itself; the proptest
//! fuzz suite feeds this parser arbitrary byte soups).

use crate::lexer::{Lexed, Token, TokenKind};

/// Item visibility, as far as the rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// Plain `pub`: part of the crate's public API (P2 applies).
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in …)`: not public API.
    Restricted,
    /// No visibility keyword.
    Private,
}

/// One `use` declaration, flattened: the local name it binds and the
/// full path it resolves to (`use demt_model::Instance as I` →
/// `local: "I"`, `path: ["demt_model", "Instance"]`). Glob imports
/// flatten to a `*` local so resolution can fall back to the crate.
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// The name this import binds in the file's scope.
    pub local: String,
    /// Full path segments, leading `crate`/`self`/`super` preserved.
    pub path: Vec<String>,
}

/// A file-reference module declaration (`mod name;`).
#[derive(Debug, Clone)]
pub struct ModDecl {
    /// Module name; the file lives at `name.rs` or `name/mod.rs`.
    pub name: String,
    /// Declared under `#[cfg(test)]` (the target file is test code).
    pub cfg_test: bool,
}

/// A call expression inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments. Method calls carry exactly one segment.
    pub path: Vec<String>,
    /// `.name(…)` receiver call (resolved by name over all impls).
    pub method: bool,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// A direct panic site (`unwrap`/`expect` call or panicking macro).
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What panics: `unwrap`, `expect`, `panic!`, `todo!`, `unimplemented!`.
    pub what: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// An indexing or slicing expression (`x[i]`, `x[a..b]`) — an optional
/// panic edge for P2 (`lint.toml [p2] index_edges`).
#[derive(Debug, Clone)]
pub struct IndexSite {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// Element-type evidence for a `fold`/`sum`/`product` chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Floatness {
    /// Provably floating point (f64/f32 turbofish or float seed value).
    Float,
    /// Provably integral (integer turbofish): D2-exempt.
    Int,
    /// No type evidence either way (treated as possibly-float).
    Unknown,
}

/// A `fold`/`sum`/`product` accumulation site, with the D2 evidence the
/// chain walk collected.
#[derive(Debug, Clone)]
pub struct AccumSite {
    /// The accumulator method name.
    pub what: String,
    /// True when the receiver chain showed a provably-ordered source
    /// (`.iter()` family, a range, or a whitelisted entry point).
    pub ordered: bool,
    /// Element-type evidence.
    pub floatness: Floatness,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// Everything the body scan extracted from one fn body.
#[derive(Debug, Clone, Default)]
pub struct BodyScan {
    /// Call expressions (path and method calls).
    pub calls: Vec<CallSite>,
    /// Direct panic sites.
    pub panics: Vec<PanicSite>,
    /// Indexing/slicing expressions.
    pub indexes: Vec<IndexSite>,
    /// Float-accumulation chains (D2 candidates).
    pub accums: Vec<AccumSite>,
}

/// One parsed fn: a free function, inherent/trait-impl method or trait
/// default method.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The fn's own name.
    pub name: String,
    /// Enclosing `impl TYPE` / `impl TRAIT for TYPE` / `trait TYPE`
    /// self-type name, if any.
    pub owner: Option<String>,
    /// Inline-module path within the file (`mod a { mod b { fn f } }`
    /// → `["a", "b"]`).
    pub module: Vec<String>,
    /// Visibility.
    pub vis: Vis,
    /// True when the fn (or an enclosing item) is `#[cfg(test)]`.
    pub cfg_test: bool,
    /// 1-based line of the fn name.
    pub line: u32,
    /// 1-based column of the fn name.
    pub col: u32,
    /// The body scan (empty for bodyless trait-method declarations).
    pub body: BodyScan,
}

/// Parse result for one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Flattened `use` declarations.
    pub uses: Vec<UseDecl>,
    /// File-reference `mod name;` declarations (classifier input).
    pub mods: Vec<ModDecl>,
    /// Every fn in the file, in source order.
    pub fns: Vec<FnDef>,
}

/// Keywords that can never start a call path or be a call name.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "as" | "break"
            | "const"
            | "continue"
            | "crate"
            | "dyn"
            | "else"
            | "enum"
            | "extern"
            | "false"
            | "fn"
            | "for"
            | "if"
            | "impl"
            | "in"
            | "let"
            | "loop"
            | "match"
            | "mod"
            | "move"
            | "mut"
            | "pub"
            | "ref"
            | "return"
            | "static"
            | "struct"
            | "super"
            | "trait"
            | "true"
            | "type"
            | "union"
            | "unsafe"
            | "use"
            | "where"
            | "while"
            | "yield"
    )
}

/// Adapters/sources that prove a chain iterates in a deterministic
/// order. `HashMap`/`HashSet` are banned in library code (D1), so the
/// `iter` family is ordered on everything that remains (slices, `Vec`,
/// arrays, `BTreeMap`/`BTreeSet`, strings).
const ORDERED_SOURCES: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "chars",
    "bytes",
    "lines",
    "split",
    "split_whitespace",
    "windows",
    "chunks",
    "chunks_exact",
    "drain",
    "range",
];

/// Parses one lexed file. Total: never fails, never panics.
pub fn parse(lexed: &Lexed) -> ParsedFile {
    parse_with_extra_ordered(lexed, &[])
}

/// [`parse`], with extra chain idents (the `lint.toml [d2]`
/// `ordered_sources` whitelist) counting as ordered evidence.
pub fn parse_with_extra_ordered(lexed: &Lexed, extra_ordered: &[String]) -> ParsedFile {
    let mut p = Parser {
        t: &lexed.tokens,
        out: ParsedFile::default(),
        module: Vec::new(),
        extra_ordered,
    };
    let end = p.t.len();
    p.items(0, end, None, false);
    p.out
}

struct Parser<'a> {
    t: &'a [Token],
    out: ParsedFile,
    module: Vec<String>,
    extra_ordered: &'a [String],
}

fn text(t: &[Token], i: usize) -> Option<&str> {
    t.get(i).map(|tok| tok.text.as_str())
}

fn kind(t: &[Token], i: usize) -> Option<TokenKind> {
    t.get(i).map(|tok| tok.kind)
}

impl<'a> Parser<'a> {
    /// Index just past the group opened at `i` (which must be an Open
    /// token); delimiter-kind-insensitive balanced skip, EOF-tolerant.
    fn skip_group(&self, i: usize) -> usize {
        let mut depth = 0i64;
        let mut j = i;
        while j < self.t.len() {
            match kind(self.t, j) {
                Some(TokenKind::Open) => depth += 1,
                Some(TokenKind::Close) => {
                    depth -= 1;
                    if depth <= 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        self.t.len()
    }

    /// Index just past a balanced `<…>` generic-argument group opened
    /// at `i` (which must be `<`). The lexer emits `<<`/`>>` as single
    /// tokens, so those count twice. Gives up (returns `i + 1`) if no
    /// matching close arrives before a `;`/`{` at depth-relevant level,
    /// which keeps expression `<` comparisons from eating the file.
    fn skip_angles(&self, i: usize) -> usize {
        let mut depth = 0i64;
        let mut j = i;
        while j < self.t.len() {
            match text(self.t, j) {
                Some("<") => depth += 1,
                Some("<<") => depth += 2,
                Some(">") => depth -= 1,
                Some(">>") => depth -= 2,
                Some("->") => {}
                Some(";") | Some("{") => return i + 1,
                _ => {}
            }
            if depth <= 0 {
                return j + 1;
            }
            j += 1;
        }
        self.t.len()
    }

    /// The item loop over `t[i..end)`. `owner` is the enclosing
    /// impl/trait self type; `cfg_test` is inherited from enclosing
    /// items.
    fn items(&mut self, start: usize, end: usize, owner: Option<&str>, cfg_test: bool) {
        let mut i = start;
        let mut pending_vis = Vis::Private;
        let mut pending_test = false;
        while i < end {
            // Attributes: note cfg(test)/test markers, skip the rest.
            if let Some((is_test, inner, after)) = crate::rules::parse_attr(self.t, i) {
                if is_test {
                    if inner {
                        // `#![cfg(test)]` marks the whole enclosing scope;
                        // approximate by marking the rest of this range.
                        self.items(after, end, owner, true);
                        return;
                    }
                    pending_test = true;
                }
                i = after;
                continue;
            }
            let Some(tok) = self.t.get(i) else { break };
            match (tok.kind, tok.text.as_str()) {
                (TokenKind::Ident, "pub") => {
                    if text(self.t, i + 1) == Some("(") {
                        pending_vis = Vis::Restricted;
                        i = self.skip_group(i + 1);
                    } else {
                        pending_vis = Vis::Pub;
                        i += 1;
                    }
                }
                (TokenKind::Ident, "use") => {
                    i = self.parse_use(i + 1, end);
                    pending_vis = Vis::Private;
                    pending_test = false;
                }
                (TokenKind::Ident, "mod") => {
                    let name = match kind(self.t, i + 1) {
                        Some(TokenKind::Ident) => text(self.t, i + 1).unwrap_or("").to_string(),
                        _ => String::new(),
                    };
                    match text(self.t, i + 2) {
                        Some(";") if !name.is_empty() => {
                            self.out.mods.push(ModDecl {
                                name,
                                cfg_test: cfg_test || pending_test,
                            });
                            i += 3;
                        }
                        Some("{") if !name.is_empty() => {
                            let close = self.skip_group(i + 2);
                            self.module.push(name);
                            self.items(i + 3, close.saturating_sub(1), None, {
                                cfg_test || pending_test
                            });
                            self.module.pop();
                            i = close;
                        }
                        _ => i += 1,
                    }
                    pending_vis = Vis::Private;
                    pending_test = false;
                }
                (TokenKind::Ident, "fn") => {
                    i = self.parse_fn(i, end, owner, pending_vis, cfg_test || pending_test);
                    pending_vis = Vis::Private;
                    pending_test = false;
                }
                (TokenKind::Ident, "impl") => {
                    i = self.parse_impl(i, end, cfg_test || pending_test);
                    pending_vis = Vis::Private;
                    pending_test = false;
                }
                (TokenKind::Ident, "trait") => {
                    i = self.parse_trait(i, end, cfg_test || pending_test);
                    pending_vis = Vis::Private;
                    pending_test = false;
                }
                (TokenKind::Ident, "struct")
                | (TokenKind::Ident, "enum")
                | (TokenKind::Ident, "union") => {
                    i = self.skip_item(i + 1, end);
                    pending_vis = Vis::Private;
                    pending_test = false;
                }
                (TokenKind::Ident, "const")
                | (TokenKind::Ident, "static")
                | (TokenKind::Ident, "type")
                | (TokenKind::Ident, "extern")
                | (TokenKind::Ident, "unsafe")
                | (TokenKind::Ident, "async") => {
                    // `const fn` / `async fn` / `unsafe fn` /
                    // `extern "C" fn`: keep the pending modifiers and let
                    // the `fn` keyword drive; otherwise skip the item.
                    let mut j = i + 1;
                    while matches!(text(self.t, j), Some("unsafe") | Some("async"))
                        || kind(self.t, j) == Some(TokenKind::Str)
                        || text(self.t, j) == Some("extern")
                    {
                        j += 1;
                    }
                    if text(self.t, j) == Some("fn") {
                        i = j;
                    } else {
                        i = self.skip_item(i + 1, end);
                        pending_vis = Vis::Private;
                        pending_test = false;
                    }
                }
                (TokenKind::Ident, "macro_rules") => {
                    // macro_rules ! name { … }
                    let mut j = i + 1;
                    while j < end && text(self.t, j) != Some("{") && text(self.t, j) != Some("(") {
                        j += 1;
                    }
                    i = if j < end { self.skip_group(j) } else { end };
                    pending_vis = Vis::Private;
                    pending_test = false;
                }
                (TokenKind::Open, "{") => {
                    // Stray block at item level (e.g. inside a macro
                    // fixture): skip it whole.
                    i = self.skip_group(i);
                }
                _ => {
                    i += 1;
                }
            }
        }
    }

    /// Skips a struct/enum/const/… item body: forward to the `;` that
    /// ends it or through the `{…}` that closes it, group-aware.
    fn skip_item(&self, start: usize, end: usize) -> usize {
        let mut i = start;
        while i < end {
            match (kind(self.t, i), text(self.t, i)) {
                (Some(TokenKind::Open), Some("{")) => return self.skip_group(i),
                (Some(TokenKind::Open), _) => i = self.skip_group(i),
                (_, Some(";")) => return i + 1,
                _ => i += 1,
            }
        }
        end
    }

    /// `use` already consumed; parses the tree up to `;`.
    fn parse_use(&mut self, start: usize, end: usize) -> usize {
        // Find the terminating `;` first (group-aware not needed: `;`
        // cannot appear inside a use tree).
        let mut stop = start;
        while stop < end && text(self.t, stop) != Some(";") {
            stop += 1;
        }
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(start, stop, &mut prefix);
        (stop + 1).min(end)
    }

    /// Parses one use-tree level in `t[i..stop)` with the given path
    /// prefix, emitting flattened [`UseDecl`]s.
    fn use_tree(&mut self, mut i: usize, stop: usize, prefix: &mut Vec<String>) {
        let depth_at_entry = prefix.len();
        let mut last: Option<String> = None;
        while i < stop {
            match (kind(self.t, i), text(self.t, i)) {
                (Some(TokenKind::Ident), Some("as")) => {
                    // `path as alias`
                    if let (Some(TokenKind::Ident), Some(alias)) =
                        (kind(self.t, i + 1), text(self.t, i + 1))
                    {
                        let mut path = prefix.clone();
                        if let Some(seg) = last.take() {
                            path.push(seg);
                        }
                        self.out.uses.push(UseDecl {
                            local: alias.to_string(),
                            path,
                        });
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                (Some(TokenKind::Ident), Some(seg)) => {
                    if let Some(prev) = last.take() {
                        // Two idents without `::` between them — tolerate.
                        prefix.push(prev);
                    }
                    last = Some(seg.to_string());
                    i += 1;
                }
                (_, Some("::")) => {
                    i += 1;
                    if text(self.t, i) == Some("{") {
                        if let Some(seg) = last.take() {
                            prefix.push(seg);
                        }
                        let close = self.skip_group(i);
                        self.use_group(i + 1, close.saturating_sub(1), prefix);
                        i = close;
                    } else if let Some(seg) = last.take() {
                        prefix.push(seg);
                    }
                }
                (_, Some("*")) => {
                    // Glob: record with the `*` local; resolution falls
                    // back to crate-wide lookup.
                    self.out.uses.push(UseDecl {
                        local: "*".to_string(),
                        path: prefix.clone(),
                    });
                    last = None;
                    i += 1;
                }
                _ => i += 1,
            }
        }
        if let Some(seg) = last {
            let mut path = prefix.clone();
            path.push(seg.clone());
            // `self` closes the group prefix itself: `use a::b::{self}`.
            let local = if seg == "self" {
                path.pop();
                path.last().cloned().unwrap_or(seg)
            } else {
                seg
            };
            self.out.uses.push(UseDecl { local, path });
        }
        prefix.truncate(depth_at_entry);
    }

    /// `{a, b::c, d as e}` group body: split on top-level commas, each
    /// part is a use-tree.
    fn use_group(&mut self, start: usize, stop: usize, prefix: &mut Vec<String>) {
        let mut part_start = start;
        let mut i = start;
        while i <= stop {
            let at_comma = i < stop && text(self.t, i) == Some(",");
            if at_comma || i == stop {
                if part_start < i {
                    self.use_tree(part_start, i, prefix);
                }
                part_start = i + 1;
            }
            if i < stop && kind(self.t, i) == Some(TokenKind::Open) {
                i = self.skip_group(i);
            } else {
                i += 1;
            }
        }
    }

    /// At the `fn` keyword. Parses the signature far enough to find the
    /// name and body, scans the body, and returns the index past it.
    fn parse_fn(
        &mut self,
        at_fn: usize,
        end: usize,
        owner: Option<&str>,
        vis: Vis,
        cfg_test: bool,
    ) -> usize {
        let (name, line, col) = match (kind(self.t, at_fn + 1), self.t.get(at_fn + 1)) {
            (Some(TokenKind::Ident), Some(tok)) => (tok.text.clone(), tok.line, tok.col),
            _ => return at_fn + 1,
        };
        // Scan to the body `{` (or `;` for bodyless trait methods),
        // skipping parameter groups, generics and where clauses.
        let mut i = at_fn + 2;
        let mut body: Option<(usize, usize)> = None;
        while i < end {
            match (kind(self.t, i), text(self.t, i)) {
                (Some(TokenKind::Open), Some("{")) => {
                    let close = self.skip_group(i);
                    body = Some((i + 1, close.saturating_sub(1)));
                    i = close;
                    break;
                }
                (Some(TokenKind::Open), _) => i = self.skip_group(i),
                (_, Some("<")) => i = self.skip_angles(i),
                (_, Some(";")) => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        let scan = match body {
            Some((b0, b1)) => self.scan_body(b0, b1.min(end)),
            None => BodyScan::default(),
        };
        self.out.fns.push(FnDef {
            name,
            owner: owner.map(str::to_string),
            module: self.module.clone(),
            vis,
            cfg_test,
            line,
            col,
            body: scan,
        });
        i
    }

    /// At the `impl` keyword: extract the self-type name and recurse
    /// into the body with that owner.
    fn parse_impl(&mut self, at_impl: usize, end: usize, cfg_test: bool) -> usize {
        let mut i = at_impl + 1;
        if text(self.t, i) == Some("<") {
            i = self.skip_angles(i);
        }
        // Walk to the body `{`, remembering the last angle-depth-0
        // ident before it — and restarting after a `for` (trait impls
        // name the self type after `for`).
        let mut name: Option<String> = None;
        while i < end {
            match (kind(self.t, i), text(self.t, i)) {
                (Some(TokenKind::Open), Some("{")) => break,
                (Some(TokenKind::Open), _) => i = self.skip_group(i),
                (_, Some("<")) => i = self.skip_angles(i),
                (Some(TokenKind::Ident), Some("for")) => {
                    name = None;
                    i += 1;
                }
                (Some(TokenKind::Ident), Some("where")) => {
                    // Bounds follow; the name is settled.
                    while i < end && text(self.t, i) != Some("{") {
                        if kind(self.t, i) == Some(TokenKind::Open) {
                            i = self.skip_group(i);
                        } else if text(self.t, i) == Some("<") {
                            i = self.skip_angles(i);
                        } else {
                            i += 1;
                        }
                    }
                }
                (Some(TokenKind::Ident), Some(seg)) if !is_keyword(seg) => {
                    name = Some(seg.to_string());
                    i += 1;
                }
                _ => i += 1,
            }
        }
        if i >= end || text(self.t, i) != Some("{") {
            return i;
        }
        let close = self.skip_group(i);
        self.items(i + 1, close.saturating_sub(1), name.as_deref(), cfg_test);
        close
    }

    /// At the `trait` keyword: default methods get the trait name as
    /// their owner (callers resolve trait methods by name anyway).
    fn parse_trait(&mut self, at_trait: usize, end: usize, cfg_test: bool) -> usize {
        let name = match (kind(self.t, at_trait + 1), text(self.t, at_trait + 1)) {
            (Some(TokenKind::Ident), Some(n)) if !is_keyword(n) => n.to_string(),
            _ => return at_trait + 1,
        };
        let mut i = at_trait + 2;
        while i < end && text(self.t, i) != Some("{") {
            if kind(self.t, i) == Some(TokenKind::Open) {
                i = self.skip_group(i);
            } else if text(self.t, i) == Some("<") {
                i = self.skip_angles(i);
            } else if text(self.t, i) == Some(";") {
                return i + 1; // `trait Alias = …;` style: no body
            } else {
                i += 1;
            }
        }
        if i >= end {
            return end;
        }
        let close = self.skip_group(i);
        self.items(i + 1, close.saturating_sub(1), Some(&name), cfg_test);
        close
    }

    // ---- body scanning ----

    /// Scans `t[start..end)` (a fn body) for calls, panic sites,
    /// indexing and accumulation chains. Token-level and tolerant: it
    /// does not build an expression tree, it recognizes the postfix
    /// patterns the rules need.
    fn scan_body(&self, start: usize, end: usize) -> BodyScan {
        let mut out = BodyScan::default();
        let mut i = start;
        while i < end {
            let Some(tok) = self.t.get(i) else { break };
            match tok.kind {
                TokenKind::Ident => {
                    let word = tok.text.as_str();
                    if is_keyword(word) {
                        i += 1;
                        continue;
                    }
                    // Panicking macro?
                    if text(self.t, i + 1) == Some("!")
                        && matches!(kind(self.t, i + 2), Some(TokenKind::Open))
                    {
                        if matches!(word, "panic" | "todo" | "unimplemented") {
                            out.panics.push(PanicSite {
                                what: format!("{word}!"),
                                line: tok.line,
                                col: tok.col,
                            });
                        }
                        i += 2; // scan macro arguments as expression soup
                        continue;
                    }
                    let prev_dot = i > start && text(self.t, i - 1) == Some(".");
                    // Method call `.name(…)`, with optional turbofish.
                    let (args_at, turbofish) = self.call_args_at(i + 1);
                    if prev_dot {
                        if let Some(args) = args_at {
                            self.method_call(&mut out, i, args, turbofish, start);
                            i += 1;
                            continue;
                        }
                        // Plain field access.
                        i += 1;
                        continue;
                    }
                    // Path call `a::b::name(…)` / free call `name(…)`.
                    if args_at.is_some() && text(self.t, i + 1) != Some("!") {
                        let mut path = vec![word.to_string()];
                        // Collect leading `seg::` segments backwards.
                        let mut j = i;
                        while j >= 2 && text(self.t, j - 1) == Some("::") {
                            let mut k = j - 2;
                            // Skip a turbofish group backwards: `Vec::<f64>::new`.
                            if matches!(text(self.t, k), Some(">") | Some(">>")) {
                                let mut depth = 0i64;
                                loop {
                                    match text(self.t, k) {
                                        Some(">") => depth += 1,
                                        Some(">>") => depth += 2,
                                        Some("<") => depth -= 1,
                                        Some("<<") => depth -= 2,
                                        _ => {}
                                    }
                                    if depth <= 0 || k == 0 {
                                        break;
                                    }
                                    k -= 1;
                                }
                                if k == 0 {
                                    break;
                                }
                                k -= 1;
                                if text(self.t, k) == Some("::") {
                                    if k == 0 {
                                        break;
                                    }
                                    k -= 1;
                                } else {
                                    break;
                                }
                            }
                            match (kind(self.t, k), text(self.t, k)) {
                                (Some(TokenKind::Ident), Some(seg)) => {
                                    path.insert(0, seg.to_string());
                                    j = k;
                                }
                                _ => break,
                            }
                        }
                        out.calls.push(CallSite {
                            path,
                            method: false,
                            line: tok.line,
                            col: tok.col,
                        });
                    }
                    i += 1;
                }
                TokenKind::Open if tok.text == "[" => {
                    // Indexing: `[` directly after an ident or a closing
                    // `)`/`]` is a subscript, not an array literal/type.
                    let is_index = i > start
                        && match (kind(self.t, i - 1), text(self.t, i - 1)) {
                            (Some(TokenKind::Ident), Some(prev)) => !is_keyword(prev),
                            (Some(TokenKind::Close), Some(")")) => true,
                            (Some(TokenKind::Close), Some("]")) => true,
                            _ => false,
                        };
                    if is_index {
                        out.indexes.push(IndexSite {
                            line: tok.line,
                            col: tok.col,
                        });
                    }
                    i += 1;
                }
                _ => {
                    i += 1;
                }
            }
        }
        out
    }

    /// If a call-argument list starts at or just after `i` (allowing a
    /// `::<…>` turbofish), returns `(Some(open_paren_index),
    /// turbofish_range)`.
    #[allow(clippy::type_complexity)]
    fn call_args_at(&self, i: usize) -> (Option<usize>, Option<(usize, usize)>) {
        if text(self.t, i) == Some("(") {
            return (Some(i), None);
        }
        if text(self.t, i) == Some("::") && text(self.t, i + 1) == Some("<") {
            let after = self.skip_angles(i + 1);
            if text(self.t, after) == Some("(") {
                return (Some(after), Some((i + 2, after.saturating_sub(1))));
            }
        }
        (None, None)
    }

    /// Records a method call at `name_at` (args open paren at `args`),
    /// plus its panic/accumulation semantics.
    fn method_call(
        &self,
        out: &mut BodyScan,
        name_at: usize,
        args: usize,
        turbofish: Option<(usize, usize)>,
        body_start: usize,
    ) {
        let Some(tok) = self.t.get(name_at) else {
            return;
        };
        let name = tok.text.as_str();
        out.calls.push(CallSite {
            path: vec![name.to_string()],
            method: true,
            line: tok.line,
            col: tok.col,
        });
        if name == "unwrap" || name == "expect" {
            out.panics.push(PanicSite {
                what: name.to_string(),
                line: tok.line,
                col: tok.col,
            });
        }
        if matches!(name, "fold" | "sum" | "product") {
            let floatness = self.accum_floatness(args, turbofish);
            let ordered = self.chain_is_ordered(name_at, body_start);
            out.accums.push(AccumSite {
                what: name.to_string(),
                ordered,
                floatness,
                line: tok.line,
                col: tok.col,
            });
        }
    }

    /// Element-type evidence for an accumulator: a `::<f64>` turbofish
    /// or a float first argument (`fold(0.0, …)`, `fold(f64::MAX, …)`)
    /// is Float; an integer turbofish is Int; anything else Unknown.
    fn accum_floatness(&self, args: usize, turbofish: Option<(usize, usize)>) -> Floatness {
        if let Some((lo, hi)) = turbofish {
            let mut j = lo;
            while j < hi {
                match text(self.t, j) {
                    Some("f64") | Some("f32") => return Floatness::Float,
                    Some("u8") | Some("u16") | Some("u32") | Some("u64") | Some("u128")
                    | Some("usize") | Some("i8") | Some("i16") | Some("i32") | Some("i64")
                    | Some("i128") | Some("isize") => return Floatness::Int,
                    _ => {}
                }
                j += 1;
            }
            return Floatness::Unknown;
        }
        // First argument of `fold(seed, …)`.
        let mut j = args + 1;
        if text(self.t, j) == Some("-") {
            j += 1;
        }
        match (kind(self.t, j), text(self.t, j)) {
            (Some(TokenKind::Float), _) => Floatness::Float,
            (Some(TokenKind::Ident), Some("f64")) | (Some(TokenKind::Ident), Some("f32")) => {
                Floatness::Float
            }
            (Some(TokenKind::Int), _) => Floatness::Int,
            _ => Floatness::Unknown,
        }
    }

    /// Walks the receiver chain backwards from the `.` before the
    /// accumulator and checks the covered token range for ordered-source
    /// evidence: an [`ORDERED_SOURCES`] (or whitelist) adapter call, or
    /// a range expression.
    fn chain_is_ordered(&self, name_at: usize, body_start: usize) -> bool {
        // name_at-1 is the `.`; scan backwards for the chain start.
        let mut j = name_at.saturating_sub(1);
        let mut depth = 0i64;
        while j > body_start {
            let k = j - 1;
            match (kind(self.t, k), text(self.t, k)) {
                (Some(TokenKind::Close), _) => depth += 1,
                (Some(TokenKind::Open), _) => {
                    if depth == 0 {
                        break; // left the enclosing group: chain starts here
                    }
                    depth -= 1;
                }
                (_, Some(t))
                    if depth == 0
                        && matches!(
                            t,
                            "," | ";"
                                | "="
                                | "=>"
                                | "&&"
                                | "||"
                                | "+"
                                | "-"
                                | "*"
                                | "/"
                                | "%"
                                | "<"
                                | ">"
                                | "<="
                                | ">="
                                | "=="
                                | "!="
                                | "!"
                                | "&"
                                | "|"
                                | "return"
                                | "in"
                                | "{"
                                | "}"
                        ) =>
                {
                    break
                }
                _ => {}
            }
            j = k;
        }
        // Evidence scan over the chain range (inner groups included —
        // `(0..n)` keeps its `..` inside a skipped group).
        let mut k = j;
        while k < name_at {
            match (kind(self.t, k), text(self.t, k)) {
                (_, Some("..")) | (_, Some("..=")) => return true,
                (Some(TokenKind::Ident), Some(word)) => {
                    let call_like =
                        text(self.t, k + 1) == Some("(") || text(self.t, k + 1) == Some("::");
                    if call_like
                        && (ORDERED_SOURCES.contains(&word)
                            || self.extra_ordered.iter().any(|w| w == word))
                    {
                        return true;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn free_fns_methods_and_owners() {
        let p = parse_src(
            r#"
pub fn free() {}
struct S;
impl S {
    pub fn method(&self) {}
    fn private(&self) {}
}
impl Display for S {
    fn fmt(&self) {}
}
trait T {
    fn required(&self);
    fn with_default(&self) { self.required() }
}
"#,
        );
        let names: Vec<(Option<&str>, &str, Vis)> = p
            .fns
            .iter()
            .map(|f| (f.owner.as_deref(), f.name.as_str(), f.vis))
            .collect();
        assert_eq!(
            names,
            vec![
                (None, "free", Vis::Pub),
                (Some("S"), "method", Vis::Pub),
                (Some("S"), "private", Vis::Private),
                (Some("S"), "fmt", Vis::Private),
                (Some("T"), "required", Vis::Private),
                (Some("T"), "with_default", Vis::Private),
            ]
        );
        // The default method's body records the `.required()` call.
        let with_default = p.fns.iter().find(|f| f.name == "with_default");
        assert!(with_default
            .map(|f| f
                .body
                .calls
                .iter()
                .any(|c| c.method && c.path == ["required"]))
            .unwrap_or(false));
    }

    #[test]
    fn pub_crate_is_restricted() {
        let p = parse_src("pub(crate) fn a() {} pub fn b() {} fn c() {}");
        let vises: Vec<Vis> = p.fns.iter().map(|f| f.vis).collect();
        assert_eq!(vises, vec![Vis::Restricted, Vis::Pub, Vis::Private]);
    }

    #[test]
    fn use_trees_flatten() {
        let p = parse_src(
            "use demt_model::{Instance, task::MoldableTask as MT};\nuse demt_platform::Schedule;\nuse std::fmt::*;\n",
        );
        let uses: Vec<(String, Vec<String>)> = p
            .uses
            .iter()
            .map(|u| (u.local.clone(), u.path.clone()))
            .collect();
        assert!(uses.contains(&(
            "Instance".to_string(),
            vec!["demt_model".to_string(), "Instance".to_string()]
        )));
        assert!(uses.contains(&(
            "MT".to_string(),
            vec![
                "demt_model".to_string(),
                "task".to_string(),
                "MoldableTask".to_string()
            ]
        )));
        assert!(uses.contains(&(
            "Schedule".to_string(),
            vec!["demt_platform".to_string(), "Schedule".to_string()]
        )));
        assert!(uses.contains(&("*".to_string(), vec!["std".to_string(), "fmt".to_string()])));
    }

    #[test]
    fn body_scan_finds_calls_panics_indexes() {
        let p = parse_src(
            r#"
pub fn f(xs: &[f64]) -> f64 {
    helper(1);
    demt_dual::dual_approx(xs);
    Instance::restrict(xs).unwrap();
    let v = xs[0];
    panic!("boom");
    v
}
"#,
        );
        let f = p.fns.first().expect("one fn");
        let paths: Vec<Vec<String>> = f.body.calls.iter().map(|c| c.path.clone()).collect();
        assert!(paths.contains(&vec!["helper".to_string()]));
        assert!(paths.contains(&vec!["demt_dual".to_string(), "dual_approx".to_string()]));
        assert!(paths.contains(&vec!["Instance".to_string(), "restrict".to_string()]));
        let panics: Vec<&str> = f.body.panics.iter().map(|p| p.what.as_str()).collect();
        assert_eq!(panics, vec!["unwrap", "panic!"]);
        assert_eq!(f.body.indexes.len(), 1);
    }

    #[test]
    fn cfg_test_marks_fns_and_mod_decls() {
        let p = parse_src(
            r#"
pub fn live() {}
#[cfg(test)]
fn helper() {}
#[cfg(test)]
mod tests;
mod real;
#[cfg(test)]
mod inline {
    fn inside() {}
}
"#,
        );
        let flags: Vec<(&str, bool)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.cfg_test))
            .collect();
        assert_eq!(
            flags,
            vec![("live", false), ("helper", true), ("inside", true)]
        );
        let mods: Vec<(&str, bool)> = p
            .mods
            .iter()
            .map(|m| (m.name.as_str(), m.cfg_test))
            .collect();
        assert_eq!(mods, vec![("tests", true), ("real", false)]);
    }

    #[test]
    fn accumulation_chains_classify() {
        let p = parse_src(
            r#"
fn f(xs: &[f64], it: impl Iterator<Item = f64>) -> f64 {
    let a = xs.iter().map(|x| x * 2.0).sum::<f64>();
    let b = (0..10).map(|i| i as f64).sum::<f64>();
    let c = it.sum::<f64>();
    let d = it.fold(0.0, |acc, x| acc + x);
    let e = xs.iter().fold(0.0, f64::max);
    let n = xs.iter().count();
    let i = it.sum::<u64>();
    a + b + c + d + e + n as f64 + i as f64
}
"#,
        );
        let f = p.fns.first().expect("one fn");
        let acc: Vec<(&str, bool, Floatness)> = f
            .body
            .accums
            .iter()
            .map(|a| (a.what.as_str(), a.ordered, a.floatness))
            .collect();
        assert_eq!(
            acc,
            vec![
                ("sum", true, Floatness::Float),   // .iter() evidence
                ("sum", true, Floatness::Float),   // range evidence
                ("sum", false, Floatness::Float),  // opaque iterator: flag
                ("fold", false, Floatness::Float), // opaque iterator: flag
                ("fold", true, Floatness::Float),  // .iter() evidence
                ("sum", false, Floatness::Int),    // integral: exempt later
            ]
        );
    }

    #[test]
    fn whitelisted_sources_count_as_ordered() {
        let lexed = lex("fn f(p: &Pool) -> f64 { p.par_map_reduce(xs, m, 0.0, r).fold(0.0, add) }");
        let extra = vec!["par_map_reduce".to_string()];
        let p = parse_with_extra_ordered(&lexed, &extra);
        let f = p.fns.first().expect("one fn");
        let acc = f.body.accums.first().expect("one accum");
        assert!(acc.ordered, "whitelisted entry point is ordered evidence");
    }

    #[test]
    fn turbofish_paths_and_methods() {
        let p = parse_src("fn f() { Vec::<f64>::with_capacity(4); xs.collect::<Vec<f64>>(); }");
        let f = p.fns.first().expect("one fn");
        let paths: Vec<Vec<String>> = f.body.calls.iter().map(|c| c.path.clone()).collect();
        assert!(paths.contains(&vec!["Vec".to_string(), "with_capacity".to_string()]));
        assert!(paths.contains(&vec!["collect".to_string()]));
    }

    #[test]
    fn inline_modules_extend_the_path() {
        let p = parse_src("mod outer { mod inner { pub fn deep() {} } pub fn shallow() {} }");
        let at: Vec<(Vec<String>, &str)> = p
            .fns
            .iter()
            .map(|f| (f.module.clone(), f.name.as_str()))
            .collect();
        assert_eq!(
            at,
            vec![
                (vec!["outer".to_string(), "inner".to_string()], "deep"),
                (vec!["outer".to_string()], "shallow"),
            ]
        );
    }

    #[test]
    fn tolerates_garbage() {
        // Unbalanced, truncated, nonsense — must not panic, must return.
        for src in [
            "fn",
            "fn (",
            "impl { fn }",
            "use ::;{{{",
            "fn f( { ] } )",
            "trait",
            "mod",
            "pub pub pub fn x",
            "fn f() { a.b.(c] }",
            "#[cfg(test)",
        ] {
            let _ = parse_src(src);
        }
    }
}
