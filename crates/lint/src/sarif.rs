//! A minimal SARIF 2.1.0 emitter (`demt lint --format sarif`).
//!
//! Just enough of the standard for GitHub code scanning to annotate
//! findings inline: one run, the driver's rule table, and one result
//! per diagnostic with a physical location. The sorted-JSON format
//! ([`crate::render_json`]) remains the determinism/golden surface —
//! SARIF is an *export*, not a contract, but it is still rendered from
//! the sorted diagnostics list so two runs stay byte-identical.

use crate::config::RULES;
use crate::{Level, Report};

/// Renders the report as a SARIF 2.1.0 document.
pub fn render_sarif(report: &Report) -> String {
    // The vendored `json!` macro takes one object level at a time, so
    // nested SARIF structures are composed from the inside out.
    let rules: Vec<serde_json::Value> = RULES
        .iter()
        .map(|(id, summary)| {
            let short = serde_json::json!({ "text": summary });
            serde_json::json!({ "id": id, "shortDescription": short })
        })
        .collect();
    let results: Vec<serde_json::Value> = report
        .diagnostics
        .iter()
        .map(|d| {
            let region = serde_json::json!({
                "startLine": d.line,
                "startColumn": d.col,
            });
            let artifact = serde_json::json!({ "uri": d.path });
            let physical = serde_json::json!({
                "artifactLocation": artifact,
                "region": region,
            });
            let location = serde_json::json!({ "physicalLocation": physical });
            let message = serde_json::json!({ "text": d.message });
            serde_json::json!({
                "ruleId": d.rule,
                "level": match d.level {
                    Level::Deny => "error",
                    Level::Warn => "warning",
                    Level::Allow => "note",
                },
                "message": message,
                "locations": serde_json::json!([location]),
            })
        })
        .collect();
    let driver = serde_json::json!({ "name": "demt-lint", "rules": rules });
    let tool = serde_json::json!({ "driver": driver });
    let run = serde_json::json!({ "tool": tool, "results": results });
    let doc = serde_json::json!({
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": serde_json::json!([run]),
    });
    serde_json::to_string_pretty(&doc).unwrap_or_else(|_| String::from("{}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Diagnostic;

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                rule: "P1".to_string(),
                level: Level::Deny,
                path: "crates/x/src/lib.rs".to_string(),
                line: 3,
                col: 7,
                message: "`.unwrap()` in library code".to_string(),
            }],
            files_scanned: 1,
            callgraph_json: String::new(),
        };
        let sarif = render_sarif(&report);
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("sarif-2.1.0.json"));
        assert!(sarif.contains("\"ruleId\": \"P1\""));
        assert!(sarif.contains("\"level\": \"error\""));
        assert!(sarif.contains("\"startLine\": 3"));
        // Every known rule is declared in the driver table.
        for (id, _) in RULES {
            assert!(sarif.contains(&format!("\"id\": \"{id}\"")), "{id}");
        }
    }

    #[test]
    fn sarif_is_deterministic() {
        let report = Report::default();
        assert_eq!(render_sarif(&report), render_sarif(&report));
    }
}
