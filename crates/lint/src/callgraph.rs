//! The workspace call graph and the P2 panic-reachability analysis.
//!
//! Resolution is deliberately *over-approximate* (CHA-lite): a method
//! call `.name(…)` edges to every workspace method named `name` that is
//! defined in a crate the caller can see (the caller's crate plus its
//! transitive [`crate::layering::ALLOWED_DEPS`] closure — a crate
//! cannot call into a crate it does not depend on). Path calls resolve
//! through the file's `use` declarations, `Self`, `crate::` prefixes
//! and the crate-ident map. Unresolvable paths (`std::…`, foreign
//! types) produce no edge. Over-approximation means P2 can flag a fn
//! that never panics in practice — that is what the per-fn
//! `allow(P2, reason)` annotation and the `panic_reach.toml` baseline
//! are for — but it cannot *miss* a workspace-internal panic path whose
//! callee names resolve.

use crate::layering;
use crate::parser::Vis;
use crate::rules::FileKind;
use crate::symbols::SymbolTable;
use std::collections::BTreeSet;

/// The graph: one node per [`SymbolTable`] fn, edges by call-site
/// resolution.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// `edges[caller] = sorted, deduplicated callee ids`.
    pub edges: Vec<Vec<usize>>,
    /// Per-node direct panic sites, rendered (`"unwrap" at line 42`,
    /// including `[p2] index_edges` sites when enabled).
    pub own_sites: Vec<Vec<String>>,
}

/// Panic-reachability per node.
#[derive(Debug, Default)]
pub struct Reachability {
    /// Call-edge distance to the nearest fn with a direct panic site:
    /// `0` = panics itself, `1+` = transitively reaches one, `None` =
    /// cannot reach a panic site.
    pub dist: Vec<Option<u32>>,
    /// Deterministic next hop towards the nearest panic site.
    pub next: Vec<Option<usize>>,
}

impl CallGraph {
    /// Builds the graph over the table, resolving every call site.
    /// `index_edges` counts indexing/slicing expressions as panic
    /// sites (`lint.toml [p2] index_edges`).
    pub fn build(table: &SymbolTable, index_edges: bool) -> CallGraph {
        let all_crates: BTreeSet<&str> = table.fns.iter().map(|f| f.crate_name.as_str()).collect();
        let mut graph = CallGraph {
            edges: Vec::with_capacity(table.fns.len()),
            own_sites: Vec::with_capacity(table.fns.len()),
        };
        for id in 0..table.fns.len() {
            let mut callees: BTreeSet<usize> = BTreeSet::new();
            let mut sites: Vec<String> = Vec::new();
            if let (Some(sym), Some(def)) = (table.fns.get(id), table.def_of(id)) {
                let visible: BTreeSet<&str> = match layering::visible_crates(&sym.crate_name) {
                    Some(v) => v,
                    None => all_crates.clone(),
                };
                let uses = table.uses_of(id);
                for call in &def.body.calls {
                    for target in resolve_call(table, id, &visible, uses, call) {
                        if target != id {
                            callees.insert(target);
                        }
                    }
                }
                if sym.kind == FileKind::Library && !sym.cfg_test {
                    for p in &def.body.panics {
                        sites.push(format!("`{}` at line {}", p.what, p.line));
                    }
                    if index_edges {
                        for ix in &def.body.indexes {
                            sites.push(format!("indexing at line {}", ix.line));
                        }
                    }
                }
            }
            graph.edges.push(callees.into_iter().collect());
            graph.own_sites.push(sites);
        }
        graph
    }

    /// Multi-source reverse BFS from every fn with a direct panic site.
    /// Deterministic: sources and reverse edges are visited in id
    /// order, so `next` (and therefore every evidence path) is stable.
    pub fn reach(&self) -> Reachability {
        let n = self.edges.len();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (caller, callees) in self.edges.iter().enumerate() {
            for &callee in callees {
                if let Some(r) = rev.get_mut(callee) {
                    r.push(caller);
                }
            }
        }
        let mut dist: Vec<Option<u32>> = vec![None; n];
        let mut next: Vec<Option<usize>> = vec![None; n];
        let mut frontier: Vec<usize> = Vec::new();
        for (id, sites) in self.own_sites.iter().enumerate() {
            if !sites.is_empty() {
                dist[id] = Some(0);
                frontier.push(id);
            }
        }
        let mut d = 0u32;
        while !frontier.is_empty() {
            d += 1;
            let mut nxt: Vec<usize> = Vec::new();
            for &node in &frontier {
                for &caller in rev.get(node).map(Vec::as_slice).unwrap_or(&[]) {
                    if let Some(slot) = dist.get_mut(caller) {
                        if slot.is_none() {
                            *slot = Some(d);
                            next[caller] = Some(node);
                            nxt.push(caller);
                        }
                    }
                }
            }
            nxt.sort_unstable();
            frontier = nxt;
        }
        Reachability { dist, next }
    }

    /// The evidence chain for a flagged fn: the deterministic shortest
    /// path of fn keys ending at the fn whose own panic site is
    /// reached, plus that site's description. Long chains elide the
    /// middle.
    pub fn evidence(&self, table: &SymbolTable, reach: &Reachability, id: usize) -> String {
        let mut hops: Vec<&str> = Vec::new();
        let mut cur = id;
        let mut guard = 0usize;
        loop {
            hops.push(
                table
                    .fns
                    .get(cur)
                    .map(|f| f.key.as_str())
                    .unwrap_or("<unknown>"),
            );
            match reach.next.get(cur).copied().flatten() {
                Some(nxt) if guard < self.edges.len() => {
                    cur = nxt;
                    guard += 1;
                }
                _ => break,
            }
        }
        let site = self
            .own_sites
            .get(cur)
            .and_then(|s| s.first())
            .map(String::as_str)
            .unwrap_or("a panic site");
        let chain = if hops.len() > 6 {
            let head = hops.get(..3).unwrap_or(&[]).join(" -> ");
            let tail = hops.get(hops.len() - 2..).unwrap_or(&[]).join(" -> ");
            format!("{head} -> ... -> {tail} ({} hops)", hops.len() - 1)
        } else {
            hops.join(" -> ")
        };
        format!("{chain}, which hits {site}")
    }

    /// Renders the graph as deterministic pretty JSON: nodes in id
    /// order with their key, location, visibility, panic distance and
    /// own sites; edges as key pairs. CI byte-compares two runs.
    pub fn render_json(&self, table: &SymbolTable, reach: &Reachability) -> String {
        let nodes: Vec<serde_json::Value> = table
            .fns
            .iter()
            .enumerate()
            .map(|(id, sym)| {
                serde_json::json!({
                    "key": sym.key,
                    "crate": sym.crate_name,
                    "path": sym.rel,
                    "line": sym.line,
                    "pub": sym.vis == Vis::Pub,
                    "panic_distance": reach.dist.get(id).copied().flatten(),
                    "own_sites": self.own_sites.get(id).cloned().unwrap_or_default(),
                })
            })
            .collect();
        let edges: Vec<serde_json::Value> = self
            .edges
            .iter()
            .enumerate()
            .flat_map(|(caller, callees)| callees.iter().map(move |&callee| (caller, callee)))
            .map(|(caller, callee)| {
                serde_json::json!([key_of(table, caller), key_of(table, callee)])
            })
            .collect();
        let doc = serde_json::json!({
            "tool": "demt-lint",
            "report": "callgraph",
            "version": 1,
            "fns": nodes.len(),
            "edges": edges.len(),
            "panic_reachable_pub_fns": table
                .fns
                .iter()
                .enumerate()
                .filter(|(id, sym)| {
                    sym.vis == Vis::Pub
                        && sym.kind == FileKind::Library
                        && matches!(reach.dist.get(*id).copied().flatten(), Some(d) if d >= 1)
                })
                .count(),
            "nodes": nodes,
            "edge_list": edges,
        });
        serde_json::to_string_pretty(&doc).unwrap_or_else(|_| String::from("{}"))
    }
}

fn key_of(table: &SymbolTable, id: usize) -> &str {
    table.fns.get(id).map(|f| f.key.as_str()).unwrap_or("")
}

/// Resolves one call site to candidate symbol ids. Over-approximate
/// by design; returns an empty vec for paths that leave the workspace.
fn resolve_call(
    table: &SymbolTable,
    caller: usize,
    visible: &BTreeSet<&str>,
    uses: &[crate::parser::UseDecl],
    call: &crate::parser::CallSite,
) -> Vec<usize> {
    let Some(caller_sym) = table.fns.get(caller) else {
        return Vec::new();
    };
    let Some(name) = call.path.last() else {
        return Vec::new();
    };
    if call.method {
        // `.name(…)`: every visible method with that name.
        return table
            .by_method
            .get(name.as_str())
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|&id| {
                        table
                            .fns
                            .get(id)
                            .map(|f| visible.contains(f.crate_name.as_str()))
                            .unwrap_or(false)
                    })
                    .collect()
            })
            .unwrap_or_default();
    }
    if call.path.len() == 1 {
        // Bare `name(…)`: a use-imported fn, else same-crate free fns.
        if let Some(u) = uses.iter().find(|u| &u.local == name) {
            return resolve_path(table, caller_sym, visible, &u.path);
        }
        return table
            .by_crate_free
            .get(&(caller_sym.crate_name.clone(), name.clone()))
            .cloned()
            .unwrap_or_default();
    }
    // Qualified `a::b::name(…)`: expand the head through `use`, then
    // resolve the full path.
    let head = call.path.first().map(String::as_str).unwrap_or("");
    if head == "Self" {
        if let Some(owner) = &caller_sym.owner {
            return owner_lookup(table, visible, owner, name, Some(&caller_sym.crate_name));
        }
        return Vec::new();
    }
    let expanded: Vec<String> = match uses.iter().find(|u| u.local == head) {
        Some(u) => u
            .path
            .iter()
            .chain(call.path.iter().skip(1))
            .cloned()
            .collect(),
        None => call.path.clone(),
    };
    resolve_path(table, caller_sym, visible, &expanded)
}

/// Resolves a full (use-expanded) path: determine the target crate from
/// the head segments, then look up by owner type or by name.
fn resolve_path(
    table: &SymbolTable,
    caller: &crate::symbols::FnSymbol,
    visible: &BTreeSet<&str>,
    path: &[String],
) -> Vec<usize> {
    let mut segs: Vec<&str> = path.iter().map(String::as_str).collect();
    let mut target_crate: Option<String> = None;
    while let Some(&head) = segs.first() {
        match head {
            "crate" | "self" | "super" => {
                target_crate = Some(caller.crate_name.clone());
                segs.remove(0);
            }
            _ => {
                if target_crate.is_none() {
                    if let Some(pkg) = table.crate_idents.get(head) {
                        if pkg != &caller.crate_name && !visible.contains(pkg.as_str()) {
                            return Vec::new(); // not a declared dependency
                        }
                        target_crate = Some(pkg.clone());
                        segs.remove(0);
                        continue;
                    }
                }
                break;
            }
        }
    }
    let Some(&name) = segs.last() else {
        return Vec::new();
    };
    // `…::Type::name` — a type-qualified call if the qualifier is
    // capitalized (workspace style: types are UpperCamelCase).
    let owner_seg = segs
        .len()
        .checked_sub(2)
        .and_then(|i| segs.get(i))
        .copied()
        .filter(|s| s.chars().next().map(char::is_uppercase).unwrap_or(false));
    if let Some(owner) = owner_seg {
        return owner_lookup(table, visible, owner, name, target_crate.as_deref());
    }
    match target_crate {
        Some(pkg) => table
            .by_crate_name
            .get(&(pkg, name.to_string()))
            .cloned()
            .unwrap_or_default(),
        // `Type` with no crate head that did not match an owner, or a
        // plain module path with no known crate: try the caller's own
        // crate, else give up (std / foreign).
        None => table
            .by_crate_name
            .get(&(caller.crate_name.clone(), name.to_string()))
            .cloned()
            .unwrap_or_default(),
    }
}

/// `(owner type, method)` lookup, narrowed to one crate when known and
/// to visible crates otherwise.
fn owner_lookup(
    table: &SymbolTable,
    visible: &BTreeSet<&str>,
    owner: &str,
    name: &str,
    crate_hint: Option<&str>,
) -> Vec<usize> {
    let ids = table
        .by_owner
        .get(&(owner.to_string(), name.to_string()))
        .cloned()
        .unwrap_or_default();
    let narrowed: Vec<usize> = match crate_hint {
        Some(pkg) => ids
            .iter()
            .copied()
            .filter(|&id| {
                table
                    .fns
                    .get(id)
                    .map(|f| f.crate_name == pkg)
                    .unwrap_or(false)
            })
            .collect(),
        None => Vec::new(),
    };
    if !narrowed.is_empty() {
        return narrowed;
    }
    ids.into_iter()
        .filter(|&id| {
            table
                .fns
                .get(id)
                .map(|f| visible.contains(f.crate_name.as_str()))
                .unwrap_or(false)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::symbols::FileInput;

    fn table(files: &[(&str, &str, &str)]) -> SymbolTable {
        SymbolTable::build(
            files
                .iter()
                .map(|(rel, crate_name, src)| FileInput {
                    rel: rel.to_string(),
                    crate_name: crate_name.to_string(),
                    kind: FileKind::Library,
                    parsed: parse(&lex(src)),
                })
                .collect(),
        )
    }

    fn id_of(t: &SymbolTable, key: &str) -> usize {
        t.fns
            .iter()
            .position(|f| f.key == key)
            .unwrap_or(usize::MAX)
    }

    #[test]
    fn free_method_and_path_calls_resolve() {
        let t = table(&[
            (
                "crates/a/src/lib.rs",
                "a",
                r#"
use b_lib::deep;
pub fn entry() { helper(); deep(); x.frob(); }
fn helper() {}
"#,
            ),
            (
                "crates/b/src/lib.rs",
                "b-lib",
                "pub fn deep() {}\npub struct X;\nimpl X { pub fn frob(&self) {} }",
            ),
        ]);
        let g = CallGraph::build(&t, false);
        let entry = id_of(&t, "a::entry");
        let callees: Vec<&str> = g.edges[entry]
            .iter()
            .map(|&c| t.fns[c].key.as_str())
            .collect();
        assert_eq!(callees, vec!["a::helper", "b-lib::deep", "b-lib::X::frob"]);
    }

    #[test]
    fn transitive_panic_reachability_with_distance() {
        let t = table(&[(
            "crates/a/src/lib.rs",
            "a",
            r#"
pub fn top() { mid() }
fn mid() { bottom() }
fn bottom() { inner.unwrap() }
pub fn clean() -> u32 { 1 }
"#,
        )]);
        let g = CallGraph::build(&t, false);
        let r = g.reach();
        assert_eq!(r.dist[id_of(&t, "a::top")], Some(2));
        assert_eq!(r.dist[id_of(&t, "a::mid")], Some(1));
        assert_eq!(r.dist[id_of(&t, "a::bottom")], Some(0));
        assert_eq!(r.dist[id_of(&t, "a::clean")], None);
        let ev = g.evidence(&t, &r, id_of(&t, "a::top"));
        assert_eq!(
            ev,
            "a::top -> a::mid -> a::bottom, which hits `unwrap` at line 4"
        );
    }

    #[test]
    fn index_edges_are_gated() {
        let src = (
            "crates/a/src/lib.rs",
            "a",
            "pub fn top(v: &[u32]) -> u32 { pick(v) }\nfn pick(v: &[u32]) -> u32 { v[0] }",
        );
        let t = table(&[src]);
        let off = CallGraph::build(&t, false);
        assert_eq!(off.reach().dist[id_of(&t, "a::top")], None);
        let on = CallGraph::build(&t, true);
        assert_eq!(on.reach().dist[id_of(&t, "a::top")], Some(1));
    }

    #[test]
    fn layering_bounds_method_resolution() {
        // demt-model depends on nothing, so a `.frob()` in demt-model
        // must not edge to a method defined in demt-sim.
        let t = table(&[
            (
                "crates/model/src/lib.rs",
                "demt-model",
                "pub fn entry(x: X) { x.frob() }",
            ),
            (
                "crates/sim/src/lib.rs",
                "demt-sim",
                "pub struct Y;\nimpl Y { pub fn frob(&self) { None::<u32>.unwrap() } }",
            ),
        ]);
        let g = CallGraph::build(&t, false);
        assert!(g.edges[id_of(&t, "demt-model::entry")].is_empty());
    }

    #[test]
    fn callgraph_json_is_deterministic() {
        let files = [(
            "crates/a/src/lib.rs",
            "a",
            "pub fn top() { mid() }\nfn mid() { x.unwrap() }",
        )];
        let t1 = table(&files);
        let g1 = CallGraph::build(&t1, false);
        let j1 = g1.render_json(&t1, &g1.reach());
        let t2 = table(&files);
        let g2 = CallGraph::build(&t2, false);
        let j2 = g2.render_json(&t2, &g2.reach());
        assert_eq!(j1, j2);
        assert!(j1.contains("\"panic_reachable_pub_fns\": 1"));
    }
}
