//! Rule **L1** — the crate-dependency DAG from `ARCHITECTURE.md`,
//! encoded as data.
//!
//! Each workspace crate may depend (in `[dependencies]`) only on the
//! `demt-*` crates listed here. The table is the *declared* layering —
//! foundation → substrates → interface → algorithms → harnesses →
//! facade — so a new undeclared cross-crate edge is an error until it
//! is added both here and in `ARCHITECTURE.md`. `[dev-dependencies]`
//! are exempt: test-only edges (the bench crate, oracle tests) do not
//! constrain the shipped layering.

use crate::config::Config;
use crate::{Diagnostic, Level};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// crate name → the `demt-*` crates its `[dependencies]` may name.
/// Mirrors the layering diagram in `ARCHITECTURE.md`; keep the two in
/// sync when adding an edge.
pub const ALLOWED_DEPS: &[(&str, &[&str])] = &[
    // foundation
    ("demt-model", &[]),
    ("demt-distr", &[]),
    ("demt-platform", &["demt-model"]),
    ("demt-workload", &["demt-distr", "demt-model"]),
    // substrates
    ("demt-kernels", &[]),
    ("demt-lp", &[]),
    ("demt-exec", &[]),
    (
        "demt-dual",
        &[
            "demt-kernels",
            "demt-model",
            "demt-platform",
            "demt-workload",
        ],
    ),
    (
        "demt-bounds",
        &[
            "demt-dual",
            "demt-exec",
            "demt-lp",
            "demt-model",
            "demt-platform",
            "demt-workload",
        ],
    ),
    // interface
    ("demt-api", &["demt-dual", "demt-model", "demt-platform"]),
    // algorithms
    (
        "demt-core",
        &[
            "demt-api",
            "demt-dual",
            "demt-kernels",
            "demt-model",
            "demt-platform",
            "demt-workload",
        ],
    ),
    (
        "demt-baselines",
        &[
            "demt-api",
            "demt-core",
            "demt-dual",
            "demt-model",
            "demt-platform",
            "demt-workload",
        ],
    ),
    // harnesses
    (
        "demt-online",
        &[
            "demt-api",
            "demt-core",
            "demt-model",
            "demt-platform",
            "demt-workload",
        ],
    ),
    (
        "demt-sim",
        &[
            "demt-api",
            "demt-baselines",
            "demt-bounds",
            "demt-core",
            "demt-dual",
            "demt-exec",
            "demt-model",
            "demt-platform",
            "demt-workload",
        ],
    ),
    (
        "demt-frontend",
        &[
            "demt-api",
            "demt-core",
            "demt-distr",
            "demt-model",
            "demt-online",
            "demt-platform",
            "demt-workload",
        ],
    ),
    (
        "demt-serve",
        &[
            "demt-api",
            "demt-baselines",
            "demt-exec",
            "demt-frontend",
            "demt-model",
            "demt-online",
            "demt-platform",
            "demt-workload",
        ],
    ),
    (
        "demt-exact",
        &["demt-model", "demt-platform", "demt-workload"],
    ),
    ("demt-divisible", &["demt-model"]),
    // tooling (standalone: no scheduling-crate deps, nothing depends
    // on it except the facade)
    ("demt-lint", &[]),
    // top: benches (micro-benches are dev-dep-only; the replaybench
    // harness drives both production engines); the facade re-exports
    // everything
    (
        "demt-bench",
        &[
            "demt-exec",
            "demt-frontend",
            "demt-model",
            "demt-online",
            "demt-platform",
            "demt-serve",
            "demt-workload",
        ],
    ),
    (
        "demt",
        &[
            "demt-api",
            "demt-baselines",
            "demt-bench",
            "demt-bounds",
            "demt-core",
            "demt-distr",
            "demt-divisible",
            "demt-dual",
            "demt-exact",
            "demt-exec",
            "demt-frontend",
            "demt-kernels",
            "demt-lint",
            "demt-lp",
            "demt-model",
            "demt-online",
            "demt-platform",
            "demt-serve",
            "demt-sim",
            "demt-workload",
        ],
    ),
];

fn allowed_for(name: &str) -> Option<&'static [&'static str]> {
    ALLOWED_DEPS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, deps)| *deps)
}

/// The crates visible from `name` through `[dependencies]` edges:
/// `name` itself plus its transitive [`ALLOWED_DEPS`] closure. The
/// call-graph resolver uses this to bound name-based method resolution
/// — a crate cannot call into a crate it does not depend on. Unknown
/// crates return `None` (the resolver falls back to everything).
pub fn visible_crates(name: &str) -> Option<BTreeSet<&'static str>> {
    let mut out: BTreeSet<&'static str> = BTreeSet::new();
    let (root, _) = ALLOWED_DEPS.iter().find(|(n, _)| *n == name)?;
    let mut stack: Vec<&'static str> = vec![root];
    while let Some(n) = stack.pop() {
        if out.insert(n) {
            if let Some(deps) = allowed_for(n) {
                stack.extend(deps.iter().copied());
            }
        }
    }
    Some(out)
}

/// A parsed manifest: package name and its `demt-*` dependency edges
/// with the line each was declared on.
#[derive(Debug, Default)]
pub struct ManifestDeps {
    /// `package.name`, if present.
    pub name: Option<String>,
    /// `(dep name, 1-based manifest line)` from `[dependencies]` only.
    pub deps: Vec<(String, u32)>,
}

/// Extracts the package name and `demt-*` `[dependencies]` edges from
/// manifest text. Understands the workspace's manifest style: dotted
/// (`demt-api.workspace = true`), inline-table and plain entries.
pub fn parse_manifest(text: &str) -> ManifestDeps {
    let mut out = ManifestDeps::default();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            continue;
        }
        match section.as_str() {
            "package" => {
                if let Some(v) = line.strip_prefix("name") {
                    let v = v.trim_start();
                    if let Some(v) = v.strip_prefix('=') {
                        let v = v.trim();
                        if let Some(name) = v.strip_prefix('"').and_then(|v| v.split('"').next()) {
                            out.name = Some(name.to_string());
                        }
                    }
                }
            }
            "dependencies" => {
                // The key runs to the first `.`, `=` or space.
                let key: String = line
                    .chars()
                    .take_while(|c| !matches!(c, '.' | '=' | ' ' | '\t'))
                    .collect();
                if key.starts_with("demt-") || key == "demt" {
                    out.deps.push((key, idx as u32 + 1));
                }
            }
            _ => {}
        }
    }
    out
}

/// Checks every crate manifest under `root` (plus the root package's
/// own manifest) against [`ALLOWED_DEPS`].
pub fn check_layering(root: &Path, cfg: &Config) -> Vec<Diagnostic> {
    let mut manifest_paths: Vec<(String, std::path::PathBuf)> = Vec::new();
    manifest_paths.push(("Cargo.toml".to_string(), root.join("Cargo.toml")));
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();
        for n in names {
            let rel = format!("crates/{n}/Cargo.toml");
            manifest_paths.push((rel, crates_dir.join(&n).join("Cargo.toml")));
        }
    }
    let mut out = Vec::new();
    let level = cfg.level("L1");
    if level == Level::Allow {
        return out;
    }
    for (rel, path) in manifest_paths {
        if cfg.is_excluded(&rel) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // no manifest (fixture trees): nothing to check
        };
        let parsed = parse_manifest(&text);
        let Some(name) = parsed.name else {
            continue; // virtual manifest with no [package]
        };
        let Some(allowed) = allowed_for(&name) else {
            out.push(Diagnostic {
                rule: "L1".to_string(),
                level,
                path: rel.clone(),
                line: 1,
                col: 1,
                message: format!(
                    "crate `{name}` is not in the declared layering DAG \
                     (add it to demt-lint's ALLOWED_DEPS and to ARCHITECTURE.md)"
                ),
            });
            continue;
        };
        for (dep, line) in parsed.deps {
            if !allowed.contains(&dep.as_str()) {
                out.push(Diagnostic {
                    rule: "L1".to_string(),
                    level,
                    path: rel.clone(),
                    line,
                    col: 1,
                    message: format!(
                        "`{name}` may not depend on `{dep}`: the edge is not in the \
                         declared layering DAG (ARCHITECTURE.md); dev-dependencies are exempt"
                    ),
                });
            }
        }
    }
    out
}

/// Asserts the table itself is a DAG (no cycles) and every listed dep
/// is itself a listed crate. Used by a unit test and by `--explain`-
/// style debugging; cheap enough to leave in the library.
pub fn table_is_dag() -> Result<(), String> {
    let names: BTreeSet<&str> = ALLOWED_DEPS.iter().map(|(n, _)| *n).collect();
    for (n, deps) in ALLOWED_DEPS {
        for d in *deps {
            if !names.contains(d) {
                return Err(format!("{n} lists unknown crate {d}"));
            }
        }
    }
    // Kahn's algorithm over the (crate → dep) edges.
    let mut indeg: BTreeMap<&str, usize> = names.iter().map(|n| (*n, 0usize)).collect();
    for (_, deps) in ALLOWED_DEPS {
        for d in *deps {
            if let Some(k) = indeg.get_mut(d) {
                *k += 1;
            }
        }
    }
    let mut queue: Vec<&str> = indeg
        .iter()
        .filter(|(_, k)| **k == 0)
        .map(|(n, _)| *n)
        .collect();
    let mut seen = 0usize;
    while let Some(n) = queue.pop() {
        seen += 1;
        if let Some(deps) = allowed_for(n) {
            for d in deps {
                if let Some(k) = indeg.get_mut(d) {
                    *k -= 1;
                    if *k == 0 {
                        queue.push(d);
                    }
                }
            }
        }
    }
    if seen != names.len() {
        return Err("the declared layering table contains a cycle".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_table_is_a_dag() {
        table_is_dag().expect("ALLOWED_DEPS must stay acyclic");
    }

    #[test]
    fn manifest_parsing_covers_the_workspace_styles() {
        let m = parse_manifest(
            r#"
[package]
name = "demt-core"

[dependencies]
demt-api.workspace = true
demt-model = { path = "../model" }
serde.workspace = true

[dev-dependencies]
demt-exact.workspace = true
"#,
        );
        assert_eq!(m.name.as_deref(), Some("demt-core"));
        let deps: Vec<&str> = m.deps.iter().map(|(d, _)| d.as_str()).collect();
        assert_eq!(deps, vec!["demt-api", "demt-model"]);
    }
}
