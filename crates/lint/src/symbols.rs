//! The workspace symbol table: every fn, inherent method and trait
//! method across all crates, keyed for the call graph.
//!
//! Built from [`crate::parser`] output, one [`FileInput`] per `.rs`
//! file. Each fn gets a stable, human-readable key —
//! `crate-name::module::path::Owner::name` — deduplicated with a `#N`
//! suffix when two fns collide (same-named helpers in sibling inline
//! modules). Keys are what the `panic_reach.toml` baseline and the
//! call-graph report speak, so they must be deterministic across runs:
//! files arrive sorted and fns are emitted in source order.

use crate::parser::{FnDef, ParsedFile, UseDecl, Vis};
use crate::rules::FileKind;
use std::collections::BTreeMap;

/// One parsed file handed to the table builder.
#[derive(Debug)]
pub struct FileInput {
    /// Workspace-relative `/`-separated path.
    pub rel: String,
    /// Cargo package name of the owning crate (`demt-platform`).
    pub crate_name: String,
    /// Driver classification (test files are excluded from the graph).
    pub kind: FileKind,
    /// Parser output.
    pub parsed: ParsedFile,
}

/// One fn in the table.
#[derive(Debug)]
pub struct FnSymbol {
    /// Stable human-readable key (baseline / report identity).
    pub key: String,
    /// Owning crate package name.
    pub crate_name: String,
    /// Index into the builder's file list (for use-map lookups).
    pub file: usize,
    /// Workspace-relative path of the defining file.
    pub rel: String,
    /// The fn's own name.
    pub name: String,
    /// `impl`/`trait` self-type name, if any.
    pub owner: Option<String>,
    /// Visibility (P2 applies to [`Vis::Pub`] only).
    pub vis: Vis,
    /// File classification.
    pub kind: FileKind,
    /// Under `#[cfg(test)]`.
    pub cfg_test: bool,
    /// 1-based line of the fn name.
    pub line: u32,
    /// 1-based column of the fn name.
    pub col: u32,
    /// Index of the fn inside its file's `parsed.fns` (body lookup).
    pub def: usize,
}

/// The workspace symbol table plus the lookup maps the resolver needs.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// All symbols, file order then source order (deterministic).
    pub fns: Vec<FnSymbol>,
    /// The inputs, for body and use-map access (`FnSymbol::file` /
    /// `FnSymbol::def` index into these).
    pub files: Vec<FileInput>,
    /// Method name → symbol ids (fns with an owner).
    pub by_method: BTreeMap<String, Vec<usize>>,
    /// (crate, fn name) → free-fn symbol ids.
    pub by_crate_free: BTreeMap<(String, String), Vec<usize>>,
    /// (crate, fn name) → all symbol ids (frees and methods).
    pub by_crate_name: BTreeMap<(String, String), Vec<usize>>,
    /// (owner type name, fn name) → symbol ids.
    pub by_owner: BTreeMap<(String, String), Vec<usize>>,
    /// Lib ident (`demt_model`) → crate package name (`demt-model`).
    pub crate_idents: BTreeMap<String, String>,
}

impl SymbolTable {
    /// Builds the table. Test-classified files and `#[cfg(test)]` fns
    /// are left out entirely: they may panic freely and would only add
    /// noise edges through over-approximate method resolution.
    pub fn build(files: Vec<FileInput>) -> SymbolTable {
        let mut table = SymbolTable::default();
        let mut key_counts: BTreeMap<String, usize> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            table
                .crate_idents
                .entry(file.crate_name.replace('-', "_"))
                .or_insert_with(|| file.crate_name.clone());
            if file.kind == FileKind::Test {
                continue;
            }
            let file_mods = module_path_of(&file.rel);
            for (di, def) in file.parsed.fns.iter().enumerate() {
                if def.cfg_test {
                    continue;
                }
                let base = symbol_key(&file.crate_name, &file_mods, def);
                let n = key_counts.entry(base.clone()).or_insert(0);
                *n += 1;
                let key = if *n == 1 { base } else { format!("{base}#{n}") };
                let id = table.fns.len();
                if let Some(owner) = &def.owner {
                    table
                        .by_method
                        .entry(def.name.clone())
                        .or_default()
                        .push(id);
                    table
                        .by_owner
                        .entry((owner.clone(), def.name.clone()))
                        .or_default()
                        .push(id);
                } else {
                    table
                        .by_crate_free
                        .entry((file.crate_name.clone(), def.name.clone()))
                        .or_default()
                        .push(id);
                }
                table
                    .by_crate_name
                    .entry((file.crate_name.clone(), def.name.clone()))
                    .or_default()
                    .push(id);
                table.fns.push(FnSymbol {
                    key,
                    crate_name: file.crate_name.clone(),
                    file: fi,
                    rel: file.rel.clone(),
                    name: def.name.clone(),
                    owner: def.owner.clone(),
                    vis: def.vis,
                    kind: file.kind,
                    cfg_test: def.cfg_test,
                    line: def.line,
                    col: def.col,
                    def: di,
                });
            }
        }
        table.files = files;
        table
    }

    /// The fn's parsed definition (body scan access).
    pub fn def_of(&self, id: usize) -> Option<&FnDef> {
        let sym = self.fns.get(id)?;
        self.files.get(sym.file)?.parsed.fns.get(sym.def)
    }

    /// The use declarations in the symbol's file.
    pub fn uses_of(&self, id: usize) -> &[UseDecl] {
        self.fns
            .get(id)
            .and_then(|s| self.files.get(s.file))
            .map(|f| f.parsed.uses.as_slice())
            .unwrap_or(&[])
    }
}

/// Module path from a workspace-relative file path: the components
/// after `src/`, minus the file stem for `lib.rs`/`main.rs`/`mod.rs`.
/// `crates/platform/src/skyline.rs` → `["skyline"]`.
fn module_path_of(rel: &str) -> Vec<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    let src_at = parts.iter().position(|p| *p == "src");
    let tail: &[&str] = match src_at {
        Some(i) => parts.get(i + 1..).unwrap_or(&[]),
        // build.rs, tests/, benches/: the whole relative tail.
        None => parts.last().map(std::slice::from_ref).unwrap_or(&[]),
    };
    let mut out: Vec<String> = Vec::new();
    for (i, part) in tail.iter().enumerate() {
        let last = i + 1 == tail.len();
        if last {
            match part.strip_suffix(".rs") {
                Some("lib") | Some("main") | Some("mod") => {}
                Some(stem) => out.push(stem.to_string()),
                None => out.push((*part).to_string()),
            }
        } else {
            out.push((*part).to_string());
        }
    }
    out
}

fn symbol_key(crate_name: &str, file_mods: &[String], def: &FnDef) -> String {
    let mut segs: Vec<&str> = vec![crate_name];
    segs.extend(file_mods.iter().map(String::as_str));
    segs.extend(def.module.iter().map(String::as_str));
    if let Some(owner) = &def.owner {
        segs.push(owner);
    }
    segs.push(&def.name);
    segs.join("::")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn input(rel: &str, crate_name: &str, kind: FileKind, src: &str) -> FileInput {
        FileInput {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            kind,
            parsed: parse(&lex(src)),
        }
    }

    #[test]
    fn keys_are_crate_module_owner_name() {
        let table = SymbolTable::build(vec![
            input(
                "crates/platform/src/skyline.rs",
                "demt-platform",
                FileKind::Library,
                "pub struct Skyline;\nimpl Skyline { pub fn push(&mut self) {} }\npub fn helper() {}",
            ),
            input(
                "crates/model/src/lib.rs",
                "demt-model",
                FileKind::Library,
                "pub fn helper() {}",
            ),
        ]);
        let keys: Vec<&str> = table.fns.iter().map(|f| f.key.as_str()).collect();
        assert_eq!(
            keys,
            vec![
                "demt-platform::skyline::Skyline::push",
                "demt-platform::skyline::helper",
                "demt-model::helper",
            ]
        );
        assert!(table
            .by_owner
            .contains_key(&("Skyline".to_string(), "push".to_string())));
        assert_eq!(
            table.crate_idents.get("demt_model").map(String::as_str),
            Some("demt-model")
        );
    }

    #[test]
    fn colliding_keys_get_suffixes() {
        let table = SymbolTable::build(vec![input(
            "crates/x/src/lib.rs",
            "x",
            FileKind::Library,
            "fn f() {}\nmod a { pub fn g() {} }\nfn f2() {}\nimpl T { fn f() {} }\nimpl T { fn f(&self) {} }",
        )]);
        let keys: Vec<&str> = table.fns.iter().map(|f| f.key.as_str()).collect();
        assert_eq!(
            keys,
            vec!["x::f", "x::a::g", "x::f2", "x::T::f", "x::T::f#2"]
        );
    }

    #[test]
    fn test_files_and_cfg_test_fns_are_excluded() {
        let table = SymbolTable::build(vec![
            input(
                "crates/x/tests/it.rs",
                "x",
                FileKind::Test,
                "pub fn in_test() {}",
            ),
            input(
                "crates/x/src/lib.rs",
                "x",
                FileKind::Library,
                "#[cfg(test)]\nfn helper() {}\npub fn live() {}",
            ),
        ]);
        let keys: Vec<&str> = table.fns.iter().map(|f| f.key.as_str()).collect();
        assert_eq!(keys, vec!["x::live"]);
    }
}
