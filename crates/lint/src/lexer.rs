//! A hand-rolled Rust lexer: source text → a flat token stream plus the
//! `// demt-lint:` control comments.
//!
//! This is *not* a full Rust parser (the workspace has no registry
//! access, so `syn` is out — the same vendored-stand-in discipline as
//! PR 1). The rule engine only needs a faithful token stream: comments,
//! strings and char literals must never leak tokens, float literals
//! must be recognizable, and `==`/`!=`/`::`/`.` must arrive as single
//! punctuation tokens. Everything here is panic-free by construction —
//! the linter lints itself.

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `unwrap`, `HashMap`, …).
    Ident,
    /// Integer literal (including tuple indices after `.`).
    Int,
    /// Float literal (`1.0`, `2.`, `1e-9`, `3f64`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'_`).
    Lifetime,
    /// Punctuation; multi-character operators are one token.
    Punct,
    /// Opening delimiter: `(`, `[` or `{`.
    Open,
    /// Closing delimiter: `)`, `]` or `}`.
    Close,
}

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Verbatim text (for literals: a placeholder, the rules never
    /// inspect literal contents).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

/// A `// demt-lint: allow(RULE, reason…)` control comment.
///
/// `rule`/`reason` are `None` when that part is missing or unparsable;
/// the rule engine turns such directives into `A1` diagnostics instead
/// of honouring them.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 1-based line the comment sits on.
    pub line: u32,
    /// The rule id inside `allow(…)`, if one parsed.
    pub rule: Option<String>,
    /// The (non-empty, trimmed) reason string, if one parsed.
    pub reason: Option<String>,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// All `demt-lint:` control comments, valid or not.
    pub directives: Vec<Directive>,
}

/// Multi-character operators, longest first so greedy matching is
/// correct (`..=` before `..`, `<<=` before `<<`).
const OPS3: &[&str] = &["..=", "<<=", ">>=", "..."];
const OPS2: &[&str] = &[
    "==", "!=", "<=", ">=", "::", "->", "=>", "..", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "^=", "&=", "|=",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes one source file. Never fails: unrecognizable bytes become
/// single-character punctuation tokens, unterminated literals run to
/// end of file — good enough for linting, and total by construction.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if is_ident_start(c) {
                self.ident_or_literal_prefix(line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else if c == '"' {
                self.string();
                self.push(TokenKind::Str, "\"…\"".to_string(), line, col);
            } else if c == '\'' {
                self.quote(line, col);
            } else if matches!(c, '(' | '[' | '{') {
                self.bump();
                self.push(TokenKind::Open, c.to_string(), line, col);
            } else if matches!(c, ')' | ']' | '}') {
                self.bump();
                self.push(TokenKind::Close, c.to_string(), line, col);
            } else {
                self.punct(line, col);
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        // Directives live in plain `//` comments only: doc comments
        // (`///`, `//!`) mention the directive syntax in prose.
        let doc = text.starts_with("///") || text.starts_with("//!");
        if !doc {
            if let Some(at) = text.find("demt-lint:") {
                let rest = &text[at + "demt-lint:".len()..];
                self.out.directives.push(parse_directive(rest, line));
            }
        }
    }

    fn block_comment(&mut self) {
        // `/*` consumed below; block comments nest in Rust.
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
    }

    /// Identifier — unless it is the `r"…"`/`b"…"`/`br#"…"#` prefix of
    /// a string/byte literal, which must be swallowed as a literal.
    fn ident_or_literal_prefix(&mut self, line: u32, col: u32) {
        let c = self.peek(0).unwrap_or(' ');
        let next = self.peek(1);
        let next2 = self.peek(2);
        let raw_str = c == 'r' && matches!(next, Some('"') | Some('#'));
        let byte_raw = c == 'b' && next == Some('r') && matches!(next2, Some('"') | Some('#'));
        let byte_char = c == 'b' && next == Some('\'');
        if byte_char {
            self.bump(); // b
            self.quote(line, col);
            return;
        }
        if raw_str || byte_raw {
            self.bump(); // r or b
            if byte_raw {
                self.bump(); // r
            }
            if self.raw_string() {
                self.push(TokenKind::Str, "r\"…\"".to_string(), line, col);
                return;
            }
            // Not actually a raw string (e.g. `r#ident`): fall through
            // and lex the rest as an identifier.
            let mut text = c.to_string();
            if byte_raw {
                text.push('r');
            }
            while let Some(n) = self.peek(0) {
                if is_ident_continue(n) {
                    text.push(n);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Ident, text, line, col);
            return;
        }
        if c == 'b' && next == Some('"') {
            self.bump(); // b
            self.string();
            self.push(TokenKind::Str, "b\"…\"".to_string(), line, col);
            return;
        }
        let mut text = String::new();
        while let Some(n) = self.peek(0) {
            if is_ident_continue(n) {
                text.push(n);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line, col);
    }

    /// At a `"`-or-`#` position after an `r`/`br` prefix: tries to lex a
    /// raw string. Returns false (consuming nothing) if the `#`s are not
    /// followed by `"` — then it was `r#ident` raw-identifier syntax.
    fn raw_string(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some('"') {
            return false;
        }
        for _ in 0..=hashes {
            self.bump(); // the #s and the opening quote
        }
        // Scan for `"` followed by `hashes` #s.
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                return true;
            }
        }
        true // unterminated: ran to EOF, still consumed as a literal
    }

    /// Consumes a `"…"` string (opening quote at the cursor).
    fn string(&mut self) {
        self.bump(); // opening "
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // whatever is escaped
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// At a `'`: char literal or lifetime.
    fn quote(&mut self, line: u32, col: u32) {
        self.bump(); // '
        match self.peek(0) {
            Some(c) if is_ident_start(c) && self.peek(1) != Some('\'') => {
                // Lifetime: 'a, '_, 'static.
                let mut text = String::from("'");
                while let Some(n) = self.peek(0) {
                    if is_ident_continue(n) {
                        text.push(n);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokenKind::Lifetime, text, line, col);
            }
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                self.bump();
                self.bump(); // escaped char
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Char, "'…'".to_string(), line, col);
            }
            Some(_) => {
                // Plain char literal 'x' (x may be any single char).
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokenKind::Char, "'…'".to_string(), line, col);
            }
            None => self.push(TokenKind::Punct, "'".to_string(), line, col),
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        // Tuple indices (`pair.0`, `t.0.1`) must stay integers: after a
        // `.` punct, digits are consumed bare with no float forms.
        let after_dot = matches!(
            self.out.tokens.last(),
            Some(t) if t.kind == TokenKind::Punct && t.text == "."
        );
        let mut text = String::new();
        let mut is_float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x') | Some('o') | Some('b')) {
            // Radix literal: 0x1F_u8 etc. Always an integer.
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Int, text, line, col);
            return;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if !after_dot {
            // Fractional part: a `.` not followed by another `.` (range)
            // or an identifier (method call / tuple field).
            if self.peek(0) == Some('.') {
                let after = self.peek(1);
                let fractional = match after {
                    Some(c) => c.is_ascii_digit() || !(is_ident_start(c) || c == '.'),
                    None => true,
                };
                if fractional {
                    is_float = true;
                    text.push('.');
                    self.bump();
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
            // Exponent.
            if matches!(self.peek(0), Some('e') | Some('E')) {
                let (sign, digit) = (self.peek(1), self.peek(2));
                let signed = matches!(sign, Some('+') | Some('-'))
                    && matches!(digit, Some(d) if d.is_ascii_digit());
                let bare = matches!(sign, Some(d) if d.is_ascii_digit());
                if signed || bare {
                    is_float = true;
                    text.push(self.bump().unwrap_or('e'));
                    if signed {
                        text.push(self.bump().unwrap_or('+'));
                    }
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        // Suffix (1u32, 2.5f64, 3f32).
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        text.push_str(&suffix);
        let kind = if is_float {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, text, line, col);
    }

    fn punct(&mut self, line: u32, col: u32) {
        let grab =
            |lexer: &Lexer, n: usize| -> String { (0..n).filter_map(|k| lexer.peek(k)).collect() };
        let three = grab(self, 3);
        if OPS3.contains(&three.as_str()) {
            for _ in 0..3 {
                self.bump();
            }
            self.push(TokenKind::Punct, three, line, col);
            return;
        }
        let two = grab(self, 2);
        if OPS2.contains(&two.as_str()) {
            for _ in 0..2 {
                self.bump();
            }
            self.push(TokenKind::Punct, two, line, col);
            return;
        }
        if let Some(c) = self.bump() {
            self.push(TokenKind::Punct, c.to_string(), line, col);
        }
    }
}

/// Parses the text after `demt-lint:` in a line comment. Expected
/// grammar: `allow(RULE, reason…)` — the reason runs to the final `)`
/// and may itself contain parentheses or commas.
fn parse_directive(rest: &str, line: u32) -> Directive {
    let rest = rest.trim();
    let body = rest
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('('))
        .and_then(|r| r.rfind(')').map(|end| &r[..end]));
    let Some(body) = body else {
        return Directive {
            line,
            rule: None,
            reason: None,
        };
    };
    let (rule, reason) = match body.split_once(',') {
        Some((r, why)) => (r.trim(), why.trim()),
        None => (body.trim(), ""),
    };
    Directive {
        line,
        rule: (!rule.is_empty()).then(|| rule.to_string()),
        reason: (!reason.is_empty()).then(|| reason.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn floats_vs_ints_vs_ranges() {
        let toks = texts("let x = 1.0; let y = 2; for i in 0..n {} let e = 1e-9; let t = p.0;");
        let floats: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, vec!["1.0", "1e-9"]);
        // `0..n` keeps 0 an int, `p.0` keeps the tuple index an int.
        let ints: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Int)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ints, vec!["2", "0", "0"]);
    }

    #[test]
    fn float_suffix_and_trailing_dot() {
        let toks = texts("a(3f64, 4., 5u8)");
        let kinds: Vec<TokenKind> = toks.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            kinds,
            vec![
                TokenKind::Ident,
                TokenKind::Open,
                TokenKind::Float,
                TokenKind::Punct,
                TokenKind::Float,
                TokenKind::Punct,
                TokenKind::Int,
                TokenKind::Close,
            ]
        );
    }

    #[test]
    fn strings_and_chars_hide_contents() {
        let toks = texts(r#"let s = "unwrap() == 1.0"; let c = '"'; let l: &'static str = r#s;"#);
        assert!(toks
            .iter()
            .all(|(_, t)| !t.contains("unwrap") && !t.contains("1.0")));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Char));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Lifetime));
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let toks = texts("r#\"panic!(\"x\")\"# /* outer /* panic!() */ still */ done");
        assert_eq!(
            toks.iter().filter(|(_, t)| t == "panic").count(),
            0,
            "panic inside literals/comments must not leak"
        );
        assert!(toks.iter().any(|(_, t)| t == "done"));
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        let toks = texts("if a != 0.0 && b == c { d ..= e; f::g(); }");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert!(puncts.contains(&"!="));
        assert!(puncts.contains(&"=="));
        assert!(puncts.contains(&"&&"));
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"..="));
    }

    #[test]
    fn directive_parsing() {
        let l = lex("x(); // demt-lint: allow(P1, invariant: y is non-empty)\n// demt-lint: allow(F1)\n// demt-lint: nonsense\n");
        assert_eq!(l.directives.len(), 3);
        assert_eq!(l.directives[0].rule.as_deref(), Some("P1"));
        assert_eq!(
            l.directives[0].reason.as_deref(),
            Some("invariant: y is non-empty")
        );
        assert_eq!(l.directives[1].rule.as_deref(), Some("F1"));
        assert_eq!(l.directives[1].reason, None);
        assert_eq!(l.directives[2].rule, None);
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("ab\n  cd");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }

    #[test]
    fn byte_literals() {
        let toks = texts(r##"let a = b"bytes"; let c = b'x'; let r = br#"raw"#;"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            1
        );
    }
}
