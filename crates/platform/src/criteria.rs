//! The two criteria of the paper and auxiliary schedule metrics.

use crate::Schedule;
use demt_model::Instance;
use serde::{Deserialize, Serialize};

/// Evaluation of a schedule under both criteria (§2.2) plus auxiliary
/// metrics used by the harness and examples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Criteria {
    /// Makespan `Cmax = max Cᵢ` — the administrator's criterion.
    pub makespan: f64,
    /// Weighted minsum `Σ wᵢ Cᵢ` — the users' criterion.
    pub weighted_completion: f64,
    /// Unweighted `Σ Cᵢ`.
    pub sum_completion: f64,
    /// Mean completion time.
    pub mean_completion: f64,
    /// Total busy area Σ kᵢ·pᵢ(kᵢ).
    pub busy_area: f64,
    /// Idle area `m·Cmax − busy_area`.
    pub idle_area: f64,
    /// Utilization `busy_area / (m·Cmax)` (1.0 for an empty schedule).
    pub utilization: f64,
}

impl Criteria {
    /// Evaluates `schedule` against `instance`. The schedule must place
    /// every task exactly once (validated separately); completion times
    /// are read from the placements.
    pub fn evaluate(instance: &Instance, schedule: &Schedule) -> Self {
        let n = instance.len();
        let completions = schedule.completions(n);
        let mut weighted = 0.0;
        let mut sum = 0.0;
        for (i, c) in completions.iter().enumerate() {
            // demt-lint: allow(P1, documented contract: evaluate requires a schedule covering the instance)
            let c = c.unwrap_or_else(|| panic!("task {i} missing from schedule"));
            weighted += instance.tasks()[i].weight() * c;
            sum += c;
        }
        let makespan = schedule.makespan();
        let busy = schedule.total_area();
        let cap = instance.procs() as f64 * makespan;
        Criteria {
            makespan,
            weighted_completion: weighted,
            sum_completion: sum,
            mean_completion: if n == 0 { 0.0 } else { sum / n as f64 },
            busy_area: busy,
            idle_area: (cap - busy).max(0.0),
            utilization: if cap > 0.0 { busy / cap } else { 1.0 },
        }
    }

    /// Lexicographic comparison `(weighted_completion, makespan)` used
    /// by DEMT's shuffle step to pick "the best resulting compact
    /// schedule".
    pub fn better_minsum_then_makespan(&self, other: &Criteria) -> bool {
        if self.weighted_completion < other.weighted_completion - 1e-12 {
            return true;
        }
        if other.weighted_completion < self.weighted_completion - 1e-12 {
            return false;
        }
        self.makespan < other.makespan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Placement;
    use demt_model::{InstanceBuilder, TaskId};

    fn inst_and_schedule() -> (Instance, Schedule) {
        let mut b = InstanceBuilder::new(3);
        b.push_times(2.0, vec![4.0, 2.0, 1.5]).unwrap(); // task 0
        b.push_times(1.0, vec![3.0, 2.0, 2.0]).unwrap(); // task 1
        let inst = b.build().unwrap();
        let mut s = Schedule::new(3);
        // task 0 on 2 procs from t=0 (C=2), task 1 on 1 proc from t=1 (C=4).
        s.push(Placement {
            task: TaskId(0),
            start: 0.0,
            duration: 2.0,
            procs: vec![0, 1].into(),
        });
        s.push(Placement {
            task: TaskId(1),
            start: 1.0,
            duration: 3.0,
            procs: vec![2].into(),
        });
        (inst, s)
    }

    #[test]
    fn criteria_arithmetic() {
        let (inst, s) = inst_and_schedule();
        let c = Criteria::evaluate(&inst, &s);
        assert_eq!(c.makespan, 4.0);
        assert_eq!(c.weighted_completion, 2.0 * 2.0 + 1.0 * 4.0);
        assert_eq!(c.sum_completion, 6.0);
        assert_eq!(c.mean_completion, 3.0);
        assert_eq!(c.busy_area, 4.0 + 3.0);
        assert_eq!(c.idle_area, 12.0 - 7.0);
        assert!((c.utilization - 7.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "missing from schedule")]
    fn missing_task_is_detected() {
        let (inst, mut s) = inst_and_schedule();
        s.placements_mut().swap(0, 1);
        let truncated = Schedule::from_placements(3, vec![s.placements()[0].clone()]);
        let _ = Criteria::evaluate(&inst, &truncated);
    }

    #[test]
    fn lexicographic_preference() {
        let a = Criteria {
            makespan: 10.0,
            weighted_completion: 5.0,
            sum_completion: 0.0,
            mean_completion: 0.0,
            busy_area: 0.0,
            idle_area: 0.0,
            utilization: 0.0,
        };
        let mut b = a;
        b.weighted_completion = 6.0;
        assert!(a.better_minsum_then_makespan(&b));
        assert!(!b.better_minsum_then_makespan(&a));
        let mut c = a;
        c.makespan = 9.0;
        assert!(c.better_minsum_then_makespan(&a));
    }
}
