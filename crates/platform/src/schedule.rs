//! Schedule representation: explicit placements on explicit processors.

use demt_model::{ProcSet, TaskId};
use serde::{Deserialize, Serialize};

/// One scheduled task: start time and the exact set of processor
/// indices it occupies for `duration`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// The task being placed.
    pub task: TaskId,
    /// Start time (`σ(i)` in the paper).
    pub start: f64,
    /// Execution time on `procs.len()` processors — must equal
    /// `pᵢ(|procs|)`; the validator checks this against the instance.
    pub duration: f64,
    /// Processor indices as a sorted disjoint interval set; the wire
    /// form stays the plain id-array, all ids `< m`.
    pub procs: ProcSet,
}

impl Placement {
    /// Completion time `Cᵢ = σ(i) + pᵢ(nbproc(i))`.
    #[inline]
    pub fn completion(&self) -> f64 {
        self.start + self.duration
    }

    /// Appends this placement's compact JSON — byte-identical to
    /// `serde_json::to_string` — without building a `Value` tree. The
    /// serve daemon emits one placement line per decision, and a wide
    /// placement's procs list is thousands of integers; allocating a
    /// tree node per integer dominated its per-decision profile.
    pub fn write_json(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(b"{\"task\":");
        push_uint(self.task.index() as u64, out);
        out.extend_from_slice(b",\"start\":");
        push_f64(self.start, out);
        out.extend_from_slice(b",\"duration\":");
        push_f64(self.duration, out);
        out.extend_from_slice(b",\"procs\":[");
        for (i, q) in self.procs.iter().enumerate() {
            if i > 0 {
                out.push(b',');
            }
            push_uint(u64::from(q), out);
        }
        out.extend_from_slice(b"]}");
    }

    /// Allotment size `nbproc(i)`.
    #[inline]
    pub fn alloc(&self) -> usize {
        self.procs.len()
    }

    /// Area (processors × time) occupied by the placement.
    #[inline]
    pub fn area(&self) -> f64 {
        self.alloc() as f64 * self.duration
    }
}

/// Appends `v`'s decimal digits — `u64` `Display` without the `fmt`
/// machinery, two digits per divide. At millions of processor indices
/// per serve batch the per-call `fmt` overhead is the bottleneck.
fn push_uint(mut v: u64, out: &mut Vec<u8>) {
    const PAIRS: [u8; 200] = {
        let mut t = [0u8; 200];
        let mut n = 0;
        while n < 100 {
            t[n * 2] = b'0' + (n / 10) as u8;
            t[n * 2 + 1] = b'0' + (n % 10) as u8;
            n += 1;
        }
        t
    };
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    while v >= 100 {
        let p = ((v % 100) as usize) * 2;
        v /= 100;
        i -= 2;
        buf[i] = PAIRS[p];
        buf[i + 1] = PAIRS[p + 1];
    }
    if v >= 10 {
        let p = (v as usize) * 2;
        i -= 2;
        buf[i] = PAIRS[p];
        buf[i + 1] = PAIRS[p + 1];
    } else {
        i -= 1;
        buf[i] = b'0' + v as u8;
    }
    out.extend_from_slice(&buf[i..]);
}

/// Appends `x` as the vendored `Value` printer does: shortest
/// round-trip `Display` for finite values, `null` otherwise.
fn push_f64(x: f64, out: &mut Vec<u8>) {
    if x.is_finite() {
        // io::Write to a Vec cannot fail; the fmt plumbing only
        // surfaces errors the sink reports.
        use std::io::Write;
        let _ = write!(out, "{x}");
    } else {
        out.extend_from_slice(b"null");
    }
}

/// A complete schedule on `m` processors.
///
/// Construction is unchecked — algorithms build schedules incrementally —
/// and [`crate::validate`] performs the full audit (one placement per
/// task, durations consistent with the instance, no processor used by
/// two tasks at once).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    procs: usize,
    placements: Vec<Placement>,
}

impl Schedule {
    /// Empty schedule on `m` processors.
    pub fn new(procs: usize) -> Self {
        assert!(procs > 0, "schedule needs at least one processor");
        Self {
            procs,
            placements: Vec::new(),
        }
    }

    /// Schedule from pre-built placements.
    pub fn from_placements(procs: usize, placements: Vec<Placement>) -> Self {
        assert!(procs > 0, "schedule needs at least one processor");
        Self { procs, placements }
    }

    /// Number of processors `m`.
    #[inline]
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// All placements, in insertion order.
    #[inline]
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Mutable access for in-place compaction passes.
    #[inline]
    pub fn placements_mut(&mut self) -> &mut [Placement] {
        &mut self.placements
    }

    /// Adds a placement. Sortedness and disjointness of the processor
    /// set are structural [`ProcSet`] invariants — no audit needed here.
    pub fn push(&mut self, p: Placement) {
        self.placements.push(p);
    }

    /// Number of placements.
    #[inline]
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// True when nothing is scheduled.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Lookup of a task's placement (linear; schedules are small).
    pub fn placement_of(&self, task: TaskId) -> Option<&Placement> {
        self.placements.iter().find(|p| p.task == task)
    }

    /// Makespan `Cmax = max Cᵢ` (0 for empty schedules).
    pub fn makespan(&self) -> f64 {
        self.placements
            .iter()
            .map(Placement::completion)
            .fold(0.0, f64::max)
    }

    /// Completion-time vector indexed by task id; `None` where a task
    /// has no (or several) placements is not detected here — run the
    /// validator for that.
    pub fn completions(&self, n: usize) -> Vec<Option<f64>> {
        let mut out = vec![None; n];
        for p in &self.placements {
            out[p.task.index()] = Some(p.completion());
        }
        out
    }

    /// Total occupied area Σ areaᵢ.
    pub fn total_area(&self) -> f64 {
        self.placements.iter().map(Placement::area).sum()
    }

    /// Sorts placements by start time (stable), normalizing the order
    /// for comparisons and rendering.
    pub fn sort_by_start(&mut self) {
        self.placements
            .sort_by(|a, b| a.start.total_cmp(&b.start).then(a.task.cmp(&b.task)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn placement(task: usize, start: f64, duration: f64, procs: &[u32]) -> Placement {
        Placement {
            task: TaskId(task),
            start,
            duration,
            procs: ProcSet::from(procs),
        }
    }

    #[test]
    fn completion_alloc_area() {
        let p = placement(0, 2.0, 3.0, &[1, 4, 5]);
        assert_eq!(p.completion(), 5.0);
        assert_eq!(p.alloc(), 3);
        assert_eq!(p.area(), 9.0);
    }

    #[test]
    fn makespan_over_placements() {
        let mut s = Schedule::new(4);
        assert_eq!(s.makespan(), 0.0);
        s.push(placement(0, 0.0, 4.0, &[0]));
        s.push(placement(1, 1.0, 2.0, &[1, 2]));
        assert_eq!(s.makespan(), 4.0);
        assert_eq!(s.total_area(), 8.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn completions_indexed_by_task() {
        let mut s = Schedule::new(2);
        s.push(placement(1, 0.0, 2.5, &[0]));
        let c = s.completions(3);
        assert_eq!(c, vec![None, Some(2.5), None]);
    }

    #[test]
    fn placement_lookup() {
        let mut s = Schedule::new(2);
        s.push(placement(7, 1.0, 1.0, &[1]));
        assert!(s.placement_of(TaskId(7)).is_some());
        assert!(s.placement_of(TaskId(0)).is_none());
    }

    #[test]
    fn sort_by_start_normalizes() {
        let mut s = Schedule::new(2);
        s.push(placement(1, 5.0, 1.0, &[0]));
        s.push(placement(0, 0.0, 1.0, &[1]));
        s.sort_by_start();
        assert_eq!(s.placements()[0].task, TaskId(0));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_proc_schedule_rejected() {
        let _ = Schedule::new(0);
    }

    #[test]
    fn write_json_matches_the_tree_serializer_byte_for_byte() {
        let mut samples = vec![
            placement(0, 0.0, 1.81, &[]),
            placement(7, 2.5, 1.0 / 3.0, &[0]),
            placement(
                usize::MAX >> 1,
                1e-300,
                1234567890.123456,
                &[9, 10, 99, 100, 101],
            ),
            placement(1, f64::NAN, f64::INFINITY, &[u32::MAX]),
        ];
        // A wide allotment covering every digit-length bucket.
        samples.push(placement(3, 0.125, 4.0, &(0..12345).collect::<Vec<u32>>()));
        for p in &samples {
            let mut fast = Vec::new();
            p.write_json(&mut fast);
            let tree = serde_json::to_string(p).expect("placements serialize");
            assert_eq!(
                String::from_utf8(fast).expect("JSON is UTF-8"),
                tree,
                "fast writer diverged on {p:?}"
            );
        }
    }
}
