//! Skyline structures over free-processor availability.
//!
//! Two event-ordered profiles keyed by time back the list engine and
//! the backfilling scheduler, replacing their former full scans of all
//! `m` processors per placement:
//!
//! * [`Skyline`] — the **free-processor count** as a piecewise-constant
//!   step function of time (a sorted segment list). It answers
//!   "earliest `t ≥ ready` where at least `k` processors stay free for
//!   `duration`" ([`Skyline::earliest_fit`]) and commits a placement by
//!   splitting the window's edge segments in `O(log E)` and then
//!   decrementing the segments the window spans ([`Skyline::commit`]),
//!   where `E` is the number of committed windows — `O(log E)` for the
//!   typical placement-sized window, linear only when one window spans
//!   most of the profile. Counts cannot name *which*
//!   processors are free, so [`crate::backfill_schedule`] uses the
//!   skyline as a sound pre-filter in front of its exact per-processor
//!   check — a candidate start the skyline rejects can never pass the
//!   identity check.
//! * [`Frontier`] — processor **identities grouped by availability
//!   time** (the non-decreasing frontier left behind by strict-order
//!   placement, where past idle intervals are gone). It claims the `k`
//!   earliest-available processors — ties broken by lowest index,
//!   exactly like sorting all `m` availability times — in
//!   `O(g log E + k)` for `g` consumed groups, which amortizes to
//!   `O(log E + k)` per claim because each claim creates at most one
//!   new group. This is the engine behind [`crate::ListPolicy::Ordered`].
//!
//! Both structures key segments by **bitwise** time equality (no
//! epsilon): they reproduce the arithmetic of the retained scan
//! reference exactly, which is what lets the differential proptest
//! suite pin byte-identical schedules.

use demt_model::ProcSet;
use std::collections::BTreeMap;
use std::ops::Bound;

/// Total-ordered wrapper for finite time coordinates (map keys).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TimeKey(pub(crate) f64);

impl Eq for TimeKey {}

impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Free-processor **count** profile over time: a sorted segment list
/// `start → free`, piecewise constant, with the last segment extending
/// to infinity. Fresh skylines have all `m` processors free everywhere;
/// [`Skyline::commit`] carves busy windows out.
///
/// ```
/// use demt_platform::Skyline;
/// // 10⁴ processors; a maintenance window takes 9 999 of them offline
/// // during [5, 8): only unit-width work fits there.
/// let mut sky = Skyline::new(10_000);
/// sky.commit(5.0, 3.0, 9_999);
/// assert_eq!(sky.free_at(6.0), 1);
/// assert_eq!(sky.earliest_fit(0.0, 2.0, 10_000), 0.0); // fits before
/// assert_eq!(sky.earliest_fit(4.0, 2.0, 10_000), 8.0); // waits it out
/// assert_eq!(sky.earliest_fit(4.0, 1.0, 1), 4.0);      // hole-fills
/// ```
#[derive(Debug, Clone)]
pub struct Skyline {
    procs: usize,
    /// Segment start → free count until the next key. Always contains a
    /// key at `0.0`; the final segment's count is always `procs`
    /// (commits are finite windows).
    segs: BTreeMap<TimeKey, usize>,
}

impl Skyline {
    /// All `procs` processors free on `[0, ∞)`.
    pub fn new(procs: usize) -> Self {
        let mut segs = BTreeMap::new();
        segs.insert(TimeKey(0.0), procs);
        Self { procs, segs }
    }

    /// Total processor count `m`.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Restores the fresh all-free profile in `O(E)` (dropping the
    /// segment list) — the bulk form of releasing every in-flight
    /// window at once. A caller that tracks its committed windows and
    /// releases *all* of them at a drain point (the batch loop does)
    /// gets the same profile this produces, only without paying a
    /// per-window `O(log E)` split and coalesce.
    pub fn reset(&mut self) {
        self.segs.clear();
        self.segs.insert(TimeKey(0.0), self.procs);
    }

    /// Number of segments `E` currently in the profile.
    pub fn segments(&self) -> usize {
        self.segs.len()
    }

    /// Free count at instant `t ≥ 0`.
    pub fn free_at(&self, t: f64) -> usize {
        debug_assert!(t >= 0.0 && t.is_finite(), "bad query instant {t}");
        self.segs
            .range(..=TimeKey(t))
            .next_back()
            .map(|(_, &f)| f)
            .unwrap_or(self.procs)
    }

    /// Minimum free count over the half-open window `[start, end)`
    /// (`free_at(start)` when the window is empty).
    pub fn min_free_in(&self, start: f64, end: f64) -> usize {
        let mut min = self.free_at(start);
        if end > start {
            for (_, &f) in self.segs.range((
                Bound::Excluded(TimeKey(start)),
                Bound::Excluded(TimeKey(end)),
            )) {
                min = min.min(f);
            }
        }
        min
    }

    /// Ensures a segment boundary exists exactly at `t`.
    fn split_at(&mut self, t: f64) {
        let floor = self.free_at(t);
        self.segs.entry(TimeKey(t)).or_insert(floor);
    }

    /// Removes `k` free processors over `[start, start + duration)`,
    /// splitting at the window edges (`O(log E)`) and decrementing
    /// every segment in between (linear in the segments the window
    /// spans). Panics if fewer than `k` processors are free anywhere in
    /// the window (an overcommit is always a caller bug).
    pub fn commit(&mut self, start: f64, duration: f64, k: usize) {
        assert!(
            start >= 0.0 && start.is_finite() && duration > 0.0 && duration.is_finite(),
            "bad commit window [{start}, {start} + {duration})"
        );
        self.commit_until(start, start + duration, k);
    }

    /// [`Skyline::commit`] with an explicit end instant instead of a
    /// duration. Callers that translate windows between time origins
    /// need this form: offsetting start and end *separately* keeps
    /// windows that abut bitwise in local coordinates abutting in
    /// global ones, where `start + duration` re-rounds and can overlap
    /// the neighbor by one ulp. A window whose bounds rounded onto the
    /// same instant is empty and ignored; `end < start` panics.
    pub fn commit_until(&mut self, start: f64, end: f64, k: usize) {
        assert!(
            start >= 0.0 && start.is_finite() && end >= start && end.is_finite(),
            "bad commit window [{start}, {end})"
        );
        if end == start {
            return;
        }
        self.split_at(start);
        self.split_at(end);
        for (_, f) in self.segs.range_mut((
            Bound::Included(TimeKey(start)),
            Bound::Excluded(TimeKey(end)),
        )) {
            let rem = f.checked_sub(k);
            // Release-assert: an overcommit here is a scheduler bug
            // that must not produce a silent bad schedule.
            assert!(
                rem.is_some(),
                "skyline overcommitted: fewer than {k} processors free"
            );
            *f = rem.unwrap_or(0);
        }
    }

    /// [`Skyline::commit_until`] for occupancy *bookkeeping* rather
    /// than engine invariants: a segment with fewer than `k` free
    /// processors clamps at zero instead of panicking.
    ///
    /// The placement engines may legally emit windows that overlap by
    /// one ulp on a processor — the list engines release completion
    /// events up to `1e-15` early, and [`crate::validate`] tolerates
    /// exactly that — so a caller mirroring an already-validated
    /// schedule into a capacity profile must absorb the phantom
    /// overlap rather than treat it as an overcommit. The clamp only
    /// ever under-reports free capacity, and only inside the
    /// ulp-sized overlap; pairing every window with
    /// [`Skyline::release_until_saturating`] restores the exact
    /// all-free profile because the release clamps at the machine
    /// size symmetrically.
    pub fn commit_until_saturating(&mut self, start: f64, end: f64, k: usize) {
        assert!(
            start >= 0.0 && start.is_finite() && end >= start && end.is_finite(),
            "bad commit window [{start}, {end})"
        );
        if end == start {
            return;
        }
        self.split_at(start);
        self.split_at(end);
        for (_, f) in self.segs.range_mut((
            Bound::Included(TimeKey(start)),
            Bound::Excluded(TimeKey(end)),
        )) {
            *f = f.saturating_sub(k);
        }
    }

    /// Commits every `(start, end, k)` window in one boundary sweep:
    /// the free count at every instant afterwards equals calling
    /// [`Skyline::commit_until_saturating`] once per window, in any
    /// order — iterated saturating subtraction of individual widths
    /// equals one saturating subtraction of their sum, because every
    /// step only subtracts. (The sweep also coalesces as it goes, so
    /// it may hold *fewer* segments than the per-window carves, which
    /// keep every window edge.) The sweep sorts the `2n` window boundaries
    /// and rebuilds the segment list in a single merged pass with the
    /// old profile, so committing a whole batch costs
    /// `O((E + n) log n)` instead of the `O(n · E)` of `n` per-window
    /// carves — the difference between microseconds and milliseconds
    /// when a daemon mirrors a 10⁴-placement batch. Windows are
    /// validated exactly like the per-window variant.
    pub fn commit_all_saturating(&mut self, windows: &[(f64, f64, usize)]) {
        let mut events: Vec<(TimeKey, i64)> = Vec::with_capacity(windows.len() * 2);
        for &(start, end, k) in windows {
            assert!(
                start >= 0.0 && start.is_finite() && end >= start && end.is_finite(),
                "bad commit window [{start}, {end})"
            );
            if end > start && k > 0 {
                events.push((TimeKey(start), k as i64));
                events.push((TimeKey(end), -(k as i64)));
            }
        }
        if events.is_empty() {
            return;
        }
        events.sort_unstable_by_key(|e| e.0);
        let old: Vec<(TimeKey, usize)> = std::mem::take(&mut self.segs).into_iter().collect();
        let mut segs = BTreeMap::new();
        let (mut oi, mut ei) = (0usize, 0usize);
        // The free count of the old profile left of its first boundary
        // (construction always seeds a boundary at 0, so this only
        // matters for a window starting at -0.0, which sorts first).
        let mut old_free = self.procs;
        let mut load: i64 = 0;
        let mut emitted = None;
        while oi < old.len() || ei < events.len() {
            let t = match (old.get(oi), events.get(ei)) {
                (Some(&(ot, _)), Some(&(et, _))) if et < ot => et,
                (Some(&(ot, _)), _) => ot,
                (None, Some(&(et, _))) => et,
                (None, None) => break,
            };
            while oi < old.len() && old[oi].0 == t {
                old_free = old[oi].1;
                oi += 1;
            }
            while ei < events.len() && events[ei].0 == t {
                load += events[ei].1;
                ei += 1;
            }
            // Active widths never sum negative (every end follows its
            // start), so the cast is lossless.
            let f = old_free.saturating_sub(load.max(0) as usize);
            // Coalesce inline; the boundary at the sweep start is
            // structural (it is 0.0 or earlier) and always kept.
            if emitted != Some(f) {
                segs.insert(t, f);
                emitted = Some(f);
            }
        }
        self.segs = segs;
    }

    /// Returns `k` processors to the free pool over
    /// `[start, start + duration)` — the exact inverse of
    /// [`Skyline::commit`] — then erases any segment boundary the window
    /// no longer needs, so a daemon that commits and releases every
    /// placement keeps `E` bounded by the windows currently *in flight*
    /// rather than by the whole history. Panics if the release would
    /// push any segment above the machine size (releasing a window that
    /// was never committed is always a caller bug).
    ///
    /// ```
    /// use demt_platform::Skyline;
    /// let mut sky = Skyline::new(16);
    /// sky.commit(1.0, 2.0, 5);
    /// sky.commit(2.0, 4.0, 7);
    /// sky.release(1.0, 2.0, 5);
    /// sky.release(2.0, 4.0, 7);
    /// // Back to the fresh single-segment profile.
    /// assert_eq!(sky.segments(), 1);
    /// assert_eq!(sky.free_at(3.0), 16);
    /// ```
    pub fn release(&mut self, start: f64, duration: f64, k: usize) {
        assert!(
            start >= 0.0 && start.is_finite() && duration > 0.0 && duration.is_finite(),
            "bad release window [{start}, {start} + {duration})"
        );
        self.release_until(start, start + duration, k);
    }

    /// [`Skyline::release`] with an explicit end instant — the inverse
    /// of [`Skyline::commit_until`], with the same empty-window and
    /// rounding semantics.
    pub fn release_until(&mut self, start: f64, end: f64, k: usize) {
        assert!(
            start >= 0.0 && start.is_finite() && end >= start && end.is_finite(),
            "bad release window [{start}, {end})"
        );
        if end == start {
            return;
        }
        self.split_at(start);
        self.split_at(end);
        for (_, f) in self.segs.range_mut((
            Bound::Included(TimeKey(start)),
            Bound::Excluded(TimeKey(end)),
        )) {
            let sum = *f + k;
            // Release-assert: freeing processors that were never
            // committed means the caller's bookkeeping diverged from the
            // profile — fail loudly rather than report phantom capacity.
            assert!(
                sum <= self.procs,
                "skyline over-released: more than {} processors free",
                self.procs
            );
            *f = sum;
        }
        self.coalesce(start, end);
    }

    /// [`Skyline::release_until`] for bookkeeping profiles built with
    /// [`Skyline::commit_until_saturating`]: a segment that would
    /// exceed the machine size clamps at it instead of panicking. The
    /// clamp is exactly the inverse of the commit-side clamp — the
    /// increments a saturated commit dropped are the ones a saturated
    /// release drops again — so releasing every committed window still
    /// ends on the pristine all-free profile.
    pub fn release_until_saturating(&mut self, start: f64, end: f64, k: usize) {
        assert!(
            start >= 0.0 && start.is_finite() && end >= start && end.is_finite(),
            "bad release window [{start}, {end})"
        );
        if end == start {
            return;
        }
        self.split_at(start);
        self.split_at(end);
        for (_, f) in self.segs.range_mut((
            Bound::Included(TimeKey(start)),
            Bound::Excluded(TimeKey(end)),
        )) {
            *f = (*f + k).min(self.procs);
        }
        self.coalesce(start, end);
    }

    /// Drops every boundary in `[start, end]` whose segment repeats its
    /// predecessor's count (the boundary at `0` is structural and always
    /// kept). Linear in the boundaries inside the window.
    fn coalesce(&mut self, start: f64, end: f64) {
        let keys: Vec<TimeKey> = self
            .segs
            .range(TimeKey(start)..=TimeKey(end))
            .map(|(&key, _)| key)
            .collect();
        for key in keys {
            if key == TimeKey(0.0) {
                continue;
            }
            let prev = self.segs.range(..key).next_back().map(|(_, &f)| f);
            if prev == self.segs.get(&key).copied() {
                self.segs.remove(&key);
            }
        }
    }

    /// Earliest `t ≥ ready` such that at least `k` processors are free
    /// throughout `[t, t + duration)`. One forward sweep over the
    /// segments at or after `ready`: `O(log E)` to locate the first
    /// segment, then linear in the segments crossed.
    ///
    /// Because the count aggregates over processor identities, a window
    /// this method accepts need not have `k` *specific* processors free
    /// for its whole length — the result is a lower bound on (i.e. a
    /// sound pre-filter for) any identity-aware placement.
    pub fn earliest_fit(&self, ready: f64, duration: f64, k: usize) -> f64 {
        assert!(
            k <= self.procs,
            "cannot fit {k} of {} processors",
            self.procs
        );
        assert!(
            ready >= 0.0 && ready.is_finite() && duration > 0.0 && duration.is_finite(),
            "bad fit query at {ready} for {duration}"
        );
        // Construction seeds a segment at time 0 and carves never
        // remove it; scanning from the start is a sound (if slower)
        // fallback should that invariant ever break.
        let floor = self
            .segs
            .range(..=TimeKey(ready))
            .next_back()
            .map(|(&k, _)| k)
            .unwrap_or(TimeKey(0.0));
        let mut cand = ready;
        let mut it = self.segs.range(floor..).peekable();
        while let Some((_, &f)) = it.next() {
            let next = it.peek().map(|(&TimeKey(t), _)| t);
            if f < k {
                // Window cannot start (or continue) here: restart the
                // candidate at the next segment boundary. The last
                // segment keeps all committed windows finite, so f ≥ k
                // there and `next` exists on this branch.
                let Some(t) = next else {
                    break;
                };
                cand = t;
            } else if next.map(|t| cand + duration <= t).unwrap_or(true) {
                return cand;
            }
        }
        unreachable!("skyline segment sweep always terminates on the final segment")
    }
}

/// Processor identities grouped by **availability time**: the frontier
/// left behind by strict-order placement. Each group's index list is
/// sorted; groups with bitwise-equal times are merged, so iterating
/// groups in time order and each group in index order enumerates the
/// processors exactly as sorting all `m` `(time, index)` pairs would —
/// which is how [`Frontier::claim`] reproduces the scan engine's
/// placements without ever materializing that sort.
#[derive(Debug, Clone)]
pub struct Frontier {
    procs: usize,
    /// Availability time → interval set of processor indices.
    groups: BTreeMap<TimeKey, ProcSet>,
}

impl Frontier {
    /// All `procs` processors available at time `0`.
    pub fn new(procs: usize) -> Self {
        let mut groups = BTreeMap::new();
        if procs > 0 {
            groups.insert(TimeKey(0.0), ProcSet::full(procs));
        }
        Self { procs, groups }
    }

    /// Total processor count `m`.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// Number of availability groups currently on the frontier.
    pub fn groups(&self) -> usize {
        self.groups.len()
    }

    /// Claims the `k` earliest-available processors (ties broken by
    /// lowest index) for a task ready at `ready` running `duration`:
    /// returns its start time `max(ready, t_k)` — `t_k` being the
    /// availability of the `k`-th processor — and the sorted processor
    /// set, whose availability is advanced to `start + duration`.
    ///
    /// Panics if `k` is zero or exceeds the machine.
    pub fn claim(&mut self, k: usize, ready: f64, duration: f64) -> (f64, ProcSet) {
        assert!(
            k >= 1 && k <= self.procs,
            "claim of {k} of {} processors",
            self.procs
        );
        assert!(
            ready >= 0.0 && ready.is_finite() && duration > 0.0 && duration.is_finite(),
            "bad claim window at {ready} for {duration}"
        );
        // Locate the boundary group holding the k-th processor.
        let mut need = k;
        let mut boundary = None;
        for (key, group) in self.groups.iter() {
            if group.len() >= need {
                boundary = Some(*key);
                break;
            }
            need -= group.len();
        }
        // Release-assert: the groups always partition all m processors
        // and k ≤ m was asserted, so the scan above found a boundary.
        assert!(boundary.is_some(), "frontier always holds all m processors");
        let boundary = boundary.unwrap_or(TimeKey(0.0));
        let start = boundary.0.max(ready);

        // Take every group strictly before the boundary whole, then the
        // lowest `need` indices of the boundary group.
        let mut procs = ProcSet::new();
        while self
            .groups
            .first_key_value()
            .is_some_and(|(&key, _)| key < boundary)
        {
            // The while condition just observed a first entry under the
            // same borrow, so the else arm never runs.
            let Some((_, group)) = self.groups.pop_first() else {
                break;
            };
            procs.union_with(&group);
        }
        // Boundary was found among the group keys and only earlier
        // groups were drained, so the lookup succeeds.
        if let Some(group) = self.groups.get_mut(&boundary) {
            let want = need.min(group.len());
            if let Some(taken) = group.take_k_lowest(want) {
                procs.union_with(&taken);
            }
            if group.is_empty() {
                self.groups.remove(&boundary);
            }
        }
        // Release-assert: a shortfall here means the frontier lost
        // processors — a scheduler bug that must not place the task on
        // a partial set.
        assert_eq!(procs.len(), k, "frontier claim came up short");

        // The claimed processors free up together at start + duration;
        // merge into an existing group on bitwise-equal times.
        let released = TimeKey(start + duration);
        match self.groups.get_mut(&released) {
            Some(existing) => existing.union_with(&procs),
            None => {
                self.groups.insert(released, procs.clone());
            }
        }
        (start, procs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_skyline_is_fully_free() {
        let sky = Skyline::new(8);
        assert_eq!(sky.free_at(0.0), 8);
        assert_eq!(sky.free_at(1e9), 8);
        assert_eq!(sky.min_free_in(0.0, 100.0), 8);
        assert_eq!(sky.earliest_fit(3.5, 2.0, 8), 3.5);
        assert_eq!(sky.segments(), 1);
    }

    #[test]
    fn commit_splits_and_restores() {
        let mut sky = Skyline::new(4);
        sky.commit(2.0, 3.0, 3);
        assert_eq!(sky.free_at(1.9), 4);
        assert_eq!(sky.free_at(2.0), 1);
        assert_eq!(sky.free_at(4.9), 1);
        assert_eq!(sky.free_at(5.0), 4);
        assert_eq!(sky.min_free_in(0.0, 2.0), 4, "half-open: busy starts at 2");
        assert_eq!(sky.min_free_in(0.0, 2.5), 1);
    }

    #[test]
    fn earliest_fit_hole_fills_and_waits() {
        let mut sky = Skyline::new(4);
        sky.commit(0.0, 2.0, 4); // everything busy during [0, 2)
        sky.commit(3.0, 2.0, 2); // half busy during [3, 5)
        assert_eq!(
            sky.earliest_fit(0.0, 1.0, 1),
            2.0,
            "hole [2, 3) fits width 1"
        );
        assert_eq!(sky.earliest_fit(0.0, 1.0, 4), 2.0);
        assert_eq!(
            sky.earliest_fit(0.0, 1.5, 4),
            5.0,
            "hole too short for 4-wide"
        );
        assert_eq!(
            sky.earliest_fit(0.0, 10.0, 2),
            2.0,
            "2-wide runs straight through"
        );
        assert_eq!(
            sky.earliest_fit(4.0, 1.0, 4),
            5.0,
            "ready inside a busy window"
        );
    }

    #[test]
    fn earliest_fit_matches_brute_force_on_random_profile() {
        // Deterministic pseudo-random windows; compare against a scan of
        // candidate starts (every segment boundary and the ready time).
        let mut sky = Skyline::new(7);
        let mut windows = Vec::new();
        let mut x = 9u64;
        for _ in 0..40 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = (x >> 33) % 97;
            let d = 1 + (x >> 17) % 13;
            let k = 1 + (x >> 5) % 3;
            if sky.min_free_in(s as f64, (s + d) as f64) >= k as usize {
                sky.commit(s as f64, d as f64, k as usize);
                windows.push((s as f64, (s + d) as f64, k as usize));
            }
        }
        let free_at = |t: f64| {
            7usize
                - windows
                    .iter()
                    .filter(|&&(s, e, _)| s <= t && t < e)
                    .map(|&(_, _, k)| k)
                    .sum::<usize>()
        };
        for (ready, duration, k) in [(0.0, 3.0, 5), (11.0, 1.0, 7), (2.5, 6.0, 4), (40.0, 2.0, 6)] {
            let got = sky.earliest_fit(ready, duration, k);
            // Brute force over quarter-unit steps.
            let mut expect = ready;
            'outer: loop {
                let mut u = expect;
                while u < expect + duration {
                    if free_at(u) < k {
                        expect += 0.25;
                        continue 'outer;
                    }
                    u += 0.25;
                }
                break;
            }
            assert!(
                (got - expect).abs() < 0.25 + 1e-12,
                "fit({ready}, {duration}, {k}): got {got}, brute force {expect}"
            );
            assert!(got + 1e-12 >= ready);
            // The returned window really is count-feasible.
            assert!(sky.min_free_in(got, got + duration) >= k);
        }
    }

    #[test]
    fn release_is_the_inverse_of_commit() {
        let mut sky = Skyline::new(9);
        sky.commit(0.0, 4.0, 3);
        sky.commit(1.0, 2.0, 6);
        sky.commit(4.0, 1.0, 9);
        assert_eq!(sky.free_at(1.5), 0);
        sky.release(1.0, 2.0, 6);
        assert_eq!(sky.free_at(1.5), 6);
        assert_eq!(sky.free_at(3.5), 6);
        sky.release(4.0, 1.0, 9);
        sky.release(0.0, 4.0, 3);
        assert_eq!(sky.segments(), 1, "all boundaries coalesced away");
        assert_eq!(sky.free_at(2.0), 9);
    }

    #[test]
    fn release_coalesces_only_redundant_boundaries() {
        let mut sky = Skyline::new(5);
        sky.commit(1.0, 2.0, 2);
        sky.commit(2.0, 2.0, 1);
        // Releasing the first window keeps the second's boundaries.
        sky.release(1.0, 2.0, 2);
        assert_eq!(sky.free_at(1.5), 5);
        assert_eq!(sky.free_at(2.5), 4);
        assert_eq!(sky.free_at(3.5), 4);
        assert_eq!(sky.free_at(4.0), 5);
        assert_eq!(sky.segments(), 3);
        sky.release(2.0, 2.0, 1);
        assert_eq!(sky.segments(), 1);
    }

    #[test]
    #[should_panic(expected = "over-released")]
    fn over_release_is_rejected() {
        let mut sky = Skyline::new(3);
        sky.commit(0.0, 1.0, 1);
        sky.release(0.5, 1.0, 2);
    }

    #[test]
    #[should_panic(expected = "overcommitted")]
    fn overcommit_is_rejected() {
        let mut sky = Skyline::new(2);
        sky.commit(0.0, 1.0, 2);
        sky.commit(0.5, 1.0, 1);
    }

    #[test]
    fn saturating_pair_absorbs_ulp_overlap_and_round_trips() {
        // Two full-machine windows overlapping by one ulp — the shape
        // the list engines emit when a completion event is released
        // 1e-15 early and a successor starts on the freed processors.
        let m = 2;
        let end_a = 5.000000000000001;
        let start_b = 5.0;
        let mut sky = Skyline::new(m);
        sky.commit_until_saturating(0.0, end_a, m);
        // The strict commit would panic here; the bookkeeping commit
        // clamps the ulp-wide [start_b, end_a) segment at zero free.
        sky.commit_until_saturating(start_b, 9.0, m);
        assert_eq!(sky.free_at(5.0), 0);
        assert_eq!(sky.free_at(7.0), 0);
        // Releasing both windows restores the pristine profile: the
        // increments the saturated commit dropped are dropped again.
        sky.release_until_saturating(0.0, end_a, m);
        sky.release_until_saturating(start_b, 9.0, m);
        assert_eq!(sky.segments(), 1);
        assert_eq!(sky.free_at(0.0), m);
        // Outside the overlap, both variants agree exactly.
        let mut strict = Skyline::new(4);
        let mut lossy = Skyline::new(4);
        strict.commit_until(1.0, 3.0, 2);
        lossy.commit_until_saturating(1.0, 3.0, 2);
        assert_eq!(strict.free_at(2.0), lossy.free_at(2.0));
    }

    #[test]
    fn reset_restores_the_fresh_profile() {
        let mut sky = Skyline::new(6);
        sky.commit(1.0, 1.0, 4);
        sky.commit(2.5, 1.0, 6);
        assert!(sky.segments() > 1);
        sky.reset();
        assert_eq!(sky.segments(), 1);
        assert_eq!(sky.free_at(1.5), 6);
        assert_eq!(sky.earliest_fit(0.0, 5.0, 6), 0.0);
    }

    #[test]
    fn bulk_commit_matches_per_window_commits() {
        // Deterministic pseudo-random overlapping windows, including
        // widths that saturate: the one-sweep commit must land on the
        // same profile as per-window saturating carves.
        let m = 9;
        let mut windows = Vec::new();
        let mut x = 31u64;
        for _ in 0..60 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = ((x >> 33) % 80) as f64 / 4.0;
            let d = (1 + (x >> 17) % 20) as f64 / 4.0;
            let k = (1 + (x >> 5) % 6) as usize;
            windows.push((s, s + d, k));
        }
        // Sweep onto a non-pristine profile to exercise the merge.
        let mut one_by_one = Skyline::new(m);
        one_by_one.commit(3.0, 10.0, 2);
        let mut bulk = one_by_one.clone();
        for &(s, e, k) in &windows {
            one_by_one.commit_until_saturating(s, e, k);
        }
        bulk.commit_all_saturating(&windows);
        // The sweep coalesces inline; per-window carves keep every
        // window edge — same step function, possibly fewer segments.
        assert!(bulk.segments() <= one_by_one.segments());
        for q in 0..140 {
            let t = q as f64 / 4.0;
            assert_eq!(bulk.free_at(t), one_by_one.free_at(t), "free counts at {t}");
        }
        // And an ulp-overlap pair saturates identically in bulk.
        let mut sky = Skyline::new(2);
        sky.commit_all_saturating(&[(0.0, 5.000000000000001, 2), (5.0, 9.0, 2)]);
        assert_eq!(sky.free_at(5.0), 0);
        assert_eq!(sky.free_at(8.0), 0);
    }

    #[test]
    fn frontier_claims_earliest_lowest_indices() {
        let mut f = Frontier::new(4);
        let (s0, p0) = f.claim(2, 0.0, 5.0);
        assert_eq!((s0, p0), (0.0, ProcSet::range(0, 1)));
        let (s1, p1) = f.claim(2, 0.0, 1.0);
        assert_eq!((s1, p1), (0.0, ProcSet::range(2, 3)));
        // 2 and 3 free at 1, 0 and 1 at 5: a 3-wide claim starts at 5
        // and takes the earliest-available processors — 2 and 3 first,
        // then the index tiebreak picks 0 over 1.
        let (s2, p2) = f.claim(3, 0.0, 1.0);
        assert_eq!(s2, 5.0);
        assert_eq!(p2, ProcSet::from_ids([0, 2, 3]));
        assert_eq!(p2.ranges(), &[(0, 0), (2, 3)]);
    }

    #[test]
    fn frontier_ready_time_delays_without_reordering() {
        let mut f = Frontier::new(3);
        let (s, p) = f.claim(1, 7.0, 1.0);
        assert_eq!((s, p), (7.0, ProcSet::range(0, 0)));
        // Processor 0 frees at 8, later than 1 and 2 (still at 0).
        let (s, p) = f.claim(3, 0.0, 1.0);
        assert_eq!(s, 8.0);
        assert_eq!(p, ProcSet::full(3));
    }

    #[test]
    fn frontier_merges_bitwise_equal_release_times() {
        let mut f = Frontier::new(4);
        f.claim(1, 0.0, 2.0);
        f.claim(1, 0.0, 2.0);
        // Both releases land at exactly 2.0: one merged group plus the
        // untouched t=0 group.
        assert_eq!(f.groups(), 2);
        let (s, p) = f.claim(4, 0.0, 1.0);
        assert_eq!(s, 2.0);
        assert_eq!(p, ProcSet::full(4));
    }
}
