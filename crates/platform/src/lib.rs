//! # demt-platform — cluster scheduling substrate
//!
//! Everything a moldable-task scheduler needs besides the scheduling
//! decision itself:
//!
//! * [`Schedule`] / [`Placement`] — explicit start times and processor
//!   sets (§2.2's `σ` and `nbproc` functions);
//! * [`Criteria`] — the paper's two objectives (`Cmax`, `Σ wᵢ Cᵢ`) plus
//!   auxiliary metrics;
//! * [`validate`] — a full feasibility audit run on every algorithm
//!   output in tests and the harness;
//! * [`list_schedule`] / [`try_list_schedule`] — the Graham-style
//!   event-driven list engine used by the baselines and by DEMT's
//!   compaction, running on the skyline structures below (the former
//!   all-`m` scan survives as a hidden differential reference);
//! * [`Skyline`] / [`Frontier`] — event-ordered free-processor profiles
//!   keyed by time: the count skyline (earliest-fit queries, backfill
//!   pre-filtering) and the availability frontier (strict-order
//!   placement), see [`mod@skyline`]'s module docs for the complexity
//!   table;
//! * [`pull_earlier`] — the "slide left on idle processors" compaction
//!   pass;
//! * [`backfill_schedule`] — conservative backfilling around node
//!   [`Reservation`]s (the §5 open problem / MAUI-style discipline),
//!   skyline-accelerated;
//! * [`render_gantt`] — ASCII Gantt charts for the examples.

#![warn(missing_docs)]

mod compact;
mod criteria;
mod gantt;
mod list;
mod reserve;
mod schedule;
pub mod skyline;
mod validate;

pub use compact::pull_earlier;
pub use criteria::Criteria;
pub use gantt::render_gantt;
#[doc(hidden)]
pub use list::list_schedule_scan;
pub use list::{
    bench_grid, list_schedule, try_list_schedule, FreeSet, ListError, ListPolicy, ListTask,
};
pub use reserve::{backfill_schedule, Reservation};
pub use schedule::{Placement, Schedule};
pub use skyline::{Frontier, Skyline};
pub use validate::{
    assert_valid, validate, validate_no_overlap, validate_with_releases, ValidationError,
};
