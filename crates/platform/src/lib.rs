//! # demt-platform — cluster scheduling substrate
//!
//! Everything a moldable-task scheduler needs besides the scheduling
//! decision itself:
//!
//! * [`Schedule`] / [`Placement`] — explicit start times and processor
//!   sets (§2.2's `σ` and `nbproc` functions);
//! * [`Criteria`] — the paper's two objectives (`Cmax`, `Σ wᵢ Cᵢ`) plus
//!   auxiliary metrics;
//! * [`validate`] — a full feasibility audit run on every algorithm
//!   output in tests and the harness;
//! * [`list_schedule`] — the Graham-style event-driven list engine used
//!   by the baselines and by DEMT's compaction;
//! * [`pull_earlier`] — the "slide left on idle processors" compaction
//!   pass;
//! * [`backfill_schedule`] — conservative backfilling around node
//!   [`Reservation`]s (the §5 open problem / MAUI-style discipline);
//! * [`render_gantt`] — ASCII Gantt charts for the examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compact;
mod criteria;
mod gantt;
mod list;
mod reserve;
mod schedule;
mod validate;

pub use compact::pull_earlier;
pub use criteria::Criteria;
pub use gantt::render_gantt;
pub use list::{list_schedule, ListPolicy, ListTask};
pub use reserve::{backfill_schedule, Reservation};
pub use schedule::{Placement, Schedule};
pub use validate::{assert_valid, validate, validate_with_releases, ValidationError};
