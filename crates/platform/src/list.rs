//! Event-driven list scheduling for parallel tasks with fixed allotments.
//!
//! This is the Graham-style multiprocessor list scheduling of Garey &
//! Graham [11 of the paper], generalized to tasks requiring `k`
//! processors: whenever processors free up, the first task in list order
//! that *fits* the available count starts immediately. It is the engine
//! behind the three "List" baselines (§4.1) and behind DEMT's compaction
//! step (§3.2), which runs it with the batch ordering.
//!
//! Two policies are provided:
//!
//! * [`ListPolicy::Greedy`] — classic Graham: any fitting task may jump
//!   ahead of a non-fitting earlier task (work-conserving);
//! * [`ListPolicy::Ordered`] — each task, taken strictly in list order,
//!   starts at the earliest instant where its allotment is available on
//!   the processor-availability *frontier* (no hole-filling: once a wide
//!   task pushes the frontier, earlier idle intervals are gone — the
//!   conservative, FCFS-like discipline). Used for ablations.

use crate::{Placement, Schedule};
use demt_model::TaskId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One entry of the priority list: a task with a fixed allotment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ListTask {
    /// Task id (used only to label the placement).
    pub id: TaskId,
    /// Number of processors the task must receive.
    pub alloc: usize,
    /// Its processing time on that allotment.
    pub duration: f64,
    /// Earliest legal start (0 off-line; release date on-line).
    pub ready: f64,
}

impl ListTask {
    /// Off-line entry (ready at 0).
    pub fn new(id: TaskId, alloc: usize, duration: f64) -> Self {
        Self {
            id,
            alloc,
            duration,
            ready: 0.0,
        }
    }
}

/// Dispatch discipline of the list engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListPolicy {
    /// Graham list scheduling: on every state change start *every*
    /// fitting task, scanning the list in priority order.
    Greedy,
    /// Strict order: task `i` is placed (at its earliest feasible start)
    /// before task `i+1` is considered.
    Ordered,
}

/// Runs the list engine on `m` processors. Panics if any allotment
/// exceeds `m` or is zero, or if a duration is not positive and finite.
///
/// ```
/// use demt_platform::{list_schedule, ListPolicy, ListTask};
/// use demt_model::TaskId;
/// // Two 2-processor tasks side by side on 4 processors.
/// let tasks = [ListTask::new(TaskId(0), 2, 3.0), ListTask::new(TaskId(1), 2, 3.0)];
/// let s = list_schedule(4, &tasks, ListPolicy::Greedy);
/// assert_eq!(s.makespan(), 3.0);
/// ```
pub fn list_schedule(m: usize, tasks: &[ListTask], policy: ListPolicy) -> Schedule {
    for t in tasks {
        assert!(
            t.alloc >= 1 && t.alloc <= m,
            "{}: allotment {} outside 1..={m}",
            t.id,
            t.alloc
        );
        assert!(
            t.duration.is_finite() && t.duration > 0.0,
            "{}: bad duration",
            t.id
        );
        assert!(
            t.ready.is_finite() && t.ready >= 0.0,
            "{}: bad ready time",
            t.id
        );
    }
    match policy {
        ListPolicy::Greedy => greedy(m, tasks),
        ListPolicy::Ordered => ordered(m, tasks),
    }
}

/// Wrapper ordering f64 event times inside a `BinaryHeap`.
#[derive(PartialEq)]
struct EventTime(f64);
impl Eq for EventTime {}
impl PartialOrd for EventTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("event times are finite")
    }
}

fn greedy(m: usize, tasks: &[ListTask]) -> Schedule {
    let mut schedule = Schedule::new(m);
    let n = tasks.len();
    let mut placed = vec![false; n];
    let mut remaining = n;

    // Free processors as a sorted free-list (indices ascending).
    let mut free: Vec<u32> = (0..m as u32).collect();
    // Completion events: (time, processors to release).
    let mut events: BinaryHeap<(Reverse<EventTime>, Vec<u32>)> = BinaryHeap::new();
    let mut now = 0.0_f64;

    while remaining > 0 {
        // Start every fitting ready task, in list order. Restart the scan
        // after each placement: an earlier non-fitting task never blocks
        // later ones (Graham), but placements change the free count.
        let mut progress = true;
        while progress {
            progress = false;
            for (i, t) in tasks.iter().enumerate() {
                if placed[i] || t.ready > now + 1e-15 || t.alloc > free.len() {
                    continue;
                }
                // Take the `alloc` lowest-indexed free processors.
                let procs: Vec<u32> = free.drain(..t.alloc).collect();
                schedule.push(Placement {
                    task: t.id,
                    start: now,
                    duration: t.duration,
                    procs: procs.clone(),
                });
                events.push((Reverse(EventTime(now + t.duration)), procs));
                placed[i] = true;
                remaining -= 1;
                progress = true;
            }
        }
        if remaining == 0 {
            break;
        }
        // Advance time: to the next completion, or to the next release if
        // it comes sooner (or if no event is pending).
        let next_release = tasks
            .iter()
            .enumerate()
            .filter(|(i, t)| !placed[*i] && t.ready > now + 1e-15)
            .map(|(_, t)| t.ready)
            .fold(f64::INFINITY, f64::min);
        let next_event = events
            .peek()
            .map(|(Reverse(EventTime(t)), _)| *t)
            .unwrap_or(f64::INFINITY);
        let next = next_event.min(next_release);
        assert!(
            next.is_finite(),
            "list engine stalled: no event and no release"
        );
        now = next;
        // Release all processors freed at (or before) `now`.
        while let Some((Reverse(EventTime(t)), _)) = events.peek() {
            if *t <= now + 1e-15 {
                let (_, procs) = events.pop().expect("peeked");
                free.extend(procs);
            } else {
                break;
            }
        }
        free.sort_unstable();
    }
    schedule
}

fn ordered(m: usize, tasks: &[ListTask]) -> Schedule {
    let mut schedule = Schedule::new(m);
    // Per-processor availability time.
    let mut avail: Vec<(f64, u32)> = (0..m as u32).map(|q| (0.0, q)).collect();
    for t in tasks {
        // The k processors that free earliest give the earliest start.
        avail.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let start = avail[t.alloc - 1].0.max(t.ready);
        let mut procs: Vec<u32> = avail[..t.alloc].iter().map(|&(_, q)| q).collect();
        procs.sort_unstable();
        for slot in avail[..t.alloc].iter_mut() {
            slot.0 = start + t.duration;
        }
        schedule.push(Placement {
            task: t.id,
            start,
            duration: t.duration,
            procs,
        });
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lt(id: usize, alloc: usize, duration: f64) -> ListTask {
        ListTask::new(TaskId(id), alloc, duration)
    }

    #[test]
    fn greedy_packs_parallel_work() {
        // Two 2-proc tasks fit side by side on 4 processors.
        let s = list_schedule(4, &[lt(0, 2, 3.0), lt(1, 2, 3.0)], ListPolicy::Greedy);
        assert_eq!(s.makespan(), 3.0);
        assert_eq!(s.placements()[0].start, 0.0);
        assert_eq!(s.placements()[1].start, 0.0);
    }

    #[test]
    fn greedy_backfills_past_blocked_head() {
        // Head task needs 3 procs (blocked until t=2); the 1-proc task
        // behind it starts immediately.
        let tasks = [lt(0, 2, 2.0), lt(1, 3, 1.0), lt(2, 1, 1.0)];
        let s = list_schedule(3, &tasks, ListPolicy::Greedy);
        let p2 = s.placement_of(TaskId(2)).unwrap();
        assert_eq!(p2.start, 0.0, "Graham fills the idle processor");
        let p1 = s.placement_of(TaskId(1)).unwrap();
        assert_eq!(p1.start, 2.0);
        assert_eq!(s.makespan(), 3.0);
    }

    #[test]
    fn ordered_respects_strict_order() {
        let tasks = [lt(0, 2, 2.0), lt(1, 3, 1.0), lt(2, 1, 1.0)];
        let s = list_schedule(3, &tasks, ListPolicy::Ordered);
        let p1 = s.placement_of(TaskId(1)).unwrap();
        assert_eq!(p1.start, 2.0);
        // No hole-filling: the wide task 1 pushed the frontier of every
        // processor to t=3, so task 2 waits even though processor 2 was
        // idle during [0, 2) (contrast with the Greedy test above).
        let p2 = s.placement_of(TaskId(2)).unwrap();
        assert_eq!(p2.start, 3.0);
        assert_eq!(s.makespan(), 4.0);
    }

    #[test]
    fn ready_times_delay_starts() {
        let mut t = lt(0, 1, 1.0);
        t.ready = 5.0;
        for policy in [ListPolicy::Greedy, ListPolicy::Ordered] {
            let s = list_schedule(2, &[t], policy);
            assert_eq!(s.placements()[0].start, 5.0, "{policy:?}");
        }
    }

    #[test]
    fn greedy_graham_bound_on_sequential_tasks() {
        // 7 unit tasks, 3 procs: optimal 3 units; Graham ≤ 2-1/m times
        // optimal, and here it is exactly ceil(7/3) = 3.
        let tasks: Vec<ListTask> = (0..7).map(|i| lt(i, 1, 1.0)).collect();
        let s = list_schedule(3, &tasks, ListPolicy::Greedy);
        assert_eq!(s.makespan(), 3.0);
    }

    #[test]
    fn full_machine_tasks_serialize() {
        let tasks = [lt(0, 4, 1.0), lt(1, 4, 2.0)];
        let s = list_schedule(4, &tasks, ListPolicy::Greedy);
        assert_eq!(s.makespan(), 3.0);
        let p1 = s.placement_of(TaskId(1)).unwrap();
        assert_eq!(p1.start, 1.0);
    }

    #[test]
    fn both_policies_agree_on_independent_unit_tasks() {
        let tasks: Vec<ListTask> = (0..6).map(|i| lt(i, 1, 2.0)).collect();
        let g = list_schedule(6, &tasks, ListPolicy::Greedy);
        let o = list_schedule(6, &tasks, ListPolicy::Ordered);
        assert_eq!(g.makespan(), 2.0);
        assert_eq!(o.makespan(), 2.0);
    }

    #[test]
    #[should_panic(expected = "allotment")]
    fn oversized_allotment_rejected() {
        let _ = list_schedule(2, &[lt(0, 3, 1.0)], ListPolicy::Greedy);
    }
}
