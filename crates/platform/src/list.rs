//! Event-driven list scheduling for parallel tasks with fixed allotments.
//!
//! This is the Graham-style multiprocessor list scheduling of Garey &
//! Graham [11 of the paper], generalized to tasks requiring `k`
//! processors: whenever processors free up, the first task in list order
//! that *fits* the available count starts immediately. It is the engine
//! behind the three "List" baselines (§4.1), behind DEMT's compaction
//! step (§3.2), which runs it with the batch ordering, and behind the
//! on-line batch framework — every placement in the workspace funnels
//! through here.
//!
//! Two policies are provided:
//!
//! * [`ListPolicy::Greedy`] — classic Graham: any fitting task may jump
//!   ahead of a non-fitting earlier task (work-conserving);
//! * [`ListPolicy::Ordered`] — each task, taken strictly in list order,
//!   starts at the earliest instant where its allotment is available on
//!   the processor-availability *frontier* (no hole-filling: once a wide
//!   task pushes the frontier, earlier idle intervals are gone — the
//!   conservative, FCFS-like discipline). Used for ablations.
//!
//! ## Engines and complexity
//!
//! The placement loop used to rescan all `m` processors (and re-sort
//! the free list) at every state change — `O(n·(n + m log m))` per
//! schedule, the dominant cost at cluster scale. The default engine now
//! runs on event-ordered structures from [`crate::skyline`]; the old
//! scan survives as [`list_schedule_scan`], a hidden reference kept
//! *only* for the differential proptest suite, the `platform` bench and
//! the CI perf guard (the same pattern as `demt-lp`'s dense solver).
//!
//! | step | scan reference | skyline engine |
//! |---|---|---|
//! | "first fitting task" (Greedy) | `O(n)` rescan per event | `O(log n)` leftmost-fit tree descent |
//! | free-processor release (Greedy) | `O(m log m)` re-sort per event | `O(k)` bitset inserts |
//! | take `k` lowest free indices | `O(m)` prefix drain | `O(k + m/64)` bitset bit-walk |
//! | earliest `k`-wide start (Ordered) | `O(m log m)` sort per task | `O(log E + k)` amortized frontier claim |
//!
//! `E` is the number of availability groups (≤ placements), `k` the
//! allotment. Total: `O((n + Σkᵢ) log(n·m))` instead of
//! `O(n·(n + m log m))` — at `m = 10⁴` the skyline engine is several
//! times faster end-to-end (see `benches/platform.rs` and the CI perf
//! guard), while a proptest suite pins its output byte-identical to
//! the scan.
//!
//! The m = 10⁴ scale is cheap enough to run in a doctest now:
//!
//! ```
//! use demt_platform::{list_schedule, ListPolicy, ListTask};
//! use demt_model::{ProcSet, TaskId};
//! // 10⁴ processors, 100 tasks of width 100: a perfect 1-unit packing.
//! let tasks: Vec<ListTask> = (0..100)
//!     .map(|i| ListTask::new(TaskId(i), 100, 1.0))
//!     .collect();
//! let s = list_schedule(10_000, &tasks, ListPolicy::Greedy);
//! assert_eq!(s.makespan(), 1.0);
//! assert_eq!(s.placements()[99].procs.len(), 100);
//! ```

use crate::skyline::Frontier;
use crate::{Placement, Schedule};
use demt_model::{ProcSet, TaskId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// One entry of the priority list: a task with a fixed allotment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ListTask {
    /// Task id (used only to label the placement).
    pub id: TaskId,
    /// Number of processors the task must receive.
    pub alloc: usize,
    /// Its processing time on that allotment.
    pub duration: f64,
    /// Earliest legal start (0 off-line; release date on-line).
    pub ready: f64,
}

impl ListTask {
    /// Off-line entry (ready at 0).
    pub fn new(id: TaskId, alloc: usize, duration: f64) -> Self {
        Self {
            id,
            alloc,
            duration,
            ready: 0.0,
        }
    }
}

/// Dispatch discipline of the list engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListPolicy {
    /// Graham list scheduling: on every state change start *every*
    /// fitting task, scanning the list in priority order.
    Greedy,
    /// Strict order: task `i` is placed (at its earliest feasible start)
    /// before task `i+1` is considered.
    Ordered,
}

/// Rejected [`ListTask`] input, reported by [`try_list_schedule`].
///
/// The list engine is a public boundary — the CLI and the on-line feed
/// hand it externally-supplied sizes — so malformed input surfaces as a
/// typed error instead of a panic; the panicking [`list_schedule`]
/// wrapper remains for callers whose inputs are internal invariants.
#[derive(Debug, Clone, PartialEq)]
pub enum ListError {
    /// The machine has no processors.
    NoProcessors,
    /// An allotment is zero or exceeds the machine.
    BadAllotment {
        /// Offending task.
        task: TaskId,
        /// Its requested allotment.
        alloc: usize,
        /// Machine size `m`.
        procs: usize,
    },
    /// A duration is non-positive, infinite or NaN.
    BadDuration {
        /// Offending task.
        task: TaskId,
        /// The rejected duration.
        duration: f64,
    },
    /// A ready time is negative, infinite or NaN.
    BadReady {
        /// Offending task.
        task: TaskId,
        /// The rejected ready time.
        ready: f64,
    },
}

impl fmt::Display for ListError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ListError::NoProcessors => write!(f, "list engine needs at least one processor"),
            ListError::BadAllotment { task, alloc, procs } => {
                write!(f, "{task}: allotment {alloc} outside 1..={procs}")
            }
            ListError::BadDuration { task, duration } => {
                write!(f, "{task}: bad duration ({duration})")
            }
            ListError::BadReady { task, ready } => {
                write!(f, "{task}: bad ready time ({ready})")
            }
        }
    }
}

impl std::error::Error for ListError {}

/// Checks the preconditions shared by every engine.
fn check_tasks(m: usize, tasks: &[ListTask]) -> Result<(), ListError> {
    if m == 0 {
        return Err(ListError::NoProcessors);
    }
    for t in tasks {
        if t.alloc < 1 || t.alloc > m {
            return Err(ListError::BadAllotment {
                task: t.id,
                alloc: t.alloc,
                procs: m,
            });
        }
        if !(t.duration.is_finite() && t.duration > 0.0) {
            return Err(ListError::BadDuration {
                task: t.id,
                duration: t.duration,
            });
        }
        if !(t.ready.is_finite() && t.ready >= 0.0) {
            return Err(ListError::BadReady {
                task: t.id,
                ready: t.ready,
            });
        }
    }
    Ok(())
}

/// Runs the list engine on `m` processors, rejecting malformed input
/// with a typed [`ListError`] — the entry point for untrusted sizes
/// (CLI flags, on-line job feeds).
///
/// ```
/// use demt_platform::{try_list_schedule, ListError, ListPolicy, ListTask};
/// use demt_model::TaskId;
/// let bad = [ListTask::new(TaskId(0), 3, 1.0)];
/// let err = try_list_schedule(2, &bad, ListPolicy::Greedy).unwrap_err();
/// assert!(matches!(err, ListError::BadAllotment { alloc: 3, procs: 2, .. }));
/// ```
pub fn try_list_schedule(
    m: usize,
    tasks: &[ListTask],
    policy: ListPolicy,
) -> Result<Schedule, ListError> {
    check_tasks(m, tasks)?;
    Ok(match policy {
        ListPolicy::Greedy => greedy(m, tasks),
        ListPolicy::Ordered => ordered(m, tasks),
    })
}

/// Runs the list engine on `m` processors. Panics if any allotment
/// exceeds `m` or is zero, or if a duration or ready time is malformed
/// — use [`try_list_schedule`] where the input is not an internal
/// invariant.
///
/// ```
/// use demt_platform::{list_schedule, ListPolicy, ListTask};
/// use demt_model::TaskId;
/// // Two 2-processor tasks side by side on 4 processors.
/// let tasks = [ListTask::new(TaskId(0), 2, 3.0), ListTask::new(TaskId(1), 2, 3.0)];
/// let s = list_schedule(4, &tasks, ListPolicy::Greedy);
/// assert_eq!(s.makespan(), 3.0);
/// ```
pub fn list_schedule(m: usize, tasks: &[ListTask], policy: ListPolicy) -> Schedule {
    // demt-lint: allow(P1, documented panicking wrapper; fallible callers use try_list_schedule)
    try_list_schedule(m, tasks, policy).unwrap_or_else(|e| panic!("{e}"))
}

/// Deterministic pseudo-random benchmark grid (splitmix64 — no rng
/// dependency, so the same seed yields the same tasks everywhere):
/// mostly narrow jobs, ~1 in 29 machine-scale wide tasks, a quarter
/// arriving late. The **single source** for `benches/platform.rs` and
/// the `demt listbench` CI guard — the perf numbers of the two are
/// comparable precisely because they schedule this same shape.
pub fn bench_grid(n: usize, m: usize, seed: u64) -> Vec<ListTask> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|i| {
            let alloc = if next() % 29 == 0 {
                1 + (next() as usize) % m
            } else {
                1 + (next() as usize) % (m / 50).max(1)
            };
            let duration = 0.25 + (next() % 4000) as f64 / 250.0;
            let mut t = ListTask::new(TaskId(i), alloc, duration);
            if next() % 4 == 0 {
                t.ready = (next() % 200) as f64 / 10.0;
            }
            t
        })
        .collect()
}

/// The retained `O(n·(n + m log m))` scan engine, kept as the
/// differential reference for the skyline engine (proptest suite,
/// `platform` bench, CI perf guard). Identical output, same panics.
#[doc(hidden)]
pub fn list_schedule_scan(m: usize, tasks: &[ListTask], policy: ListPolicy) -> Schedule {
    if let Err(e) = check_tasks(m, tasks) {
        // demt-lint: allow(P1, hidden differential reference that keeps the same panicking contract as list_schedule)
        panic!("{e}");
    }
    match policy {
        ListPolicy::Greedy => scan::greedy(m, tasks),
        ListPolicy::Ordered => scan::ordered(m, tasks),
    }
}

/// Wrapper ordering f64 event times inside a `BinaryHeap`.
#[derive(PartialEq)]
struct EventTime(f64);
impl Eq for EventTime {}
impl PartialOrd for EventTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Leftmost-fit index over the task list: a flat segment tree whose
/// leaves hold the allotment of each released, unplaced task
/// (`usize::MAX` otherwise); [`FitTree::first_fitting`] descends to the
/// leftmost leaf with value ≤ the free count in `O(log n)` — the
/// skyline engine's replacement for rescanning the whole list at every
/// event.
struct FitTree {
    base: usize,
    min: Vec<usize>,
}

impl FitTree {
    fn new(n: usize) -> Self {
        let base = n.next_power_of_two().max(1);
        Self {
            base,
            min: vec![usize::MAX; 2 * base],
        }
    }

    /// Sets leaf `pos` (a list position) to `value` and refreshes the
    /// minima up the spine.
    fn set(&mut self, pos: usize, value: usize) {
        let mut i = self.base + pos;
        self.min[i] = value;
        while i > 1 {
            i /= 2;
            self.min[i] = self.min[2 * i].min(self.min[2 * i + 1]);
        }
    }

    /// Leftmost position whose value is ≤ `cap`, if any.
    fn first_fitting(&self, cap: usize) -> Option<usize> {
        if self.min[1] > cap {
            return None;
        }
        let mut i = 1;
        while i < self.base {
            i = if self.min[2 * i] <= cap {
                2 * i
            } else {
                2 * i + 1
            };
        }
        Some(i - self.base)
    }
}

/// Free-processor identities as a sorted interval set ([`ProcSet`]):
/// take-`k`-lowest splits off a prefix of segments, releases are
/// interval unions. Free sets stay a handful of contiguous runs in
/// practice, so both operations are `O(segments)` — and a claimed set
/// is carried through event heaps as ranges, not `k` ids. Shared by
/// the greedy list engine here and the skyline EASY queue in the
/// front-end crate.
#[derive(Debug, Clone)]
pub struct FreeSet {
    set: ProcSet,
}

impl FreeSet {
    /// All `m` processors free.
    pub fn full(m: usize) -> Self {
        Self {
            set: ProcSet::full(m),
        }
    }

    /// Number of free processors.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether no processor is free.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Removes and returns the `k` lowest free ids as an interval set.
    ///
    /// `k` must not exceed [`FreeSet::len`] — the engines gate every
    /// take on the free count. A shortfall trips the debug assert; in
    /// release builds the set is left untouched and the empty set comes
    /// back (the validator then rejects the malformed placement).
    pub fn take_lowest(&mut self, k: usize) -> ProcSet {
        debug_assert!(k <= self.set.len(), "take exceeds free count");
        self.set.take_k_lowest(k).unwrap_or_default()
    }

    /// Marks processor `q` free again.
    pub fn insert(&mut self, q: u32) {
        self.set.insert(q);
    }

    /// Marks a whole claimed set free again (interval union).
    pub fn release(&mut self, procs: &ProcSet) {
        self.set.union_with(procs);
    }

    /// The free ids as an interval set.
    pub fn as_procset(&self) -> &ProcSet {
        &self.set
    }
}

/// Graham greedy on event-ordered structures: a ready-time heap feeds a
/// [`FitTree`] of released tasks, the free processors live in a
/// [`FreeSet`] bitset, and completion events release processor
/// identities back. Placements are identical to the scan reference:
/// within one instant the free count only shrinks, so repeatedly taking
/// the leftmost fitting task enumerates exactly the tasks a full list
/// scan would start, in the same order.
fn greedy(m: usize, tasks: &[ListTask]) -> Schedule {
    let mut schedule = Schedule::new(m);
    let n = tasks.len();
    let mut remaining = n;

    let mut free = FreeSet::full(m);
    // Completion events: (time, processors to release). The proc set
    // rides the heap as a few interval ranges — the PR 5 profile's
    // per-event Σk id clone is gone.
    let mut events: BinaryHeap<(Reverse<EventTime>, ProcSet)> = BinaryHeap::new();
    // Tasks whose ready time has not arrived yet, earliest first.
    let mut unreleased: BinaryHeap<Reverse<(EventTime, usize)>> = tasks
        .iter()
        .enumerate()
        .map(|(i, t)| Reverse((EventTime(t.ready), i)))
        .collect();
    let mut fit = FitTree::new(n);
    let mut now = 0.0_f64;

    loop {
        // Release every task whose ready time has arrived (same 1e-15
        // slack as the scan reference).
        while let Some(&Reverse((EventTime(r), i))) = unreleased.peek() {
            if r <= now + 1e-15 {
                unreleased.pop();
                fit.set(i, tasks[i].alloc);
            } else {
                break;
            }
        }
        // Start every fitting released task, in list order.
        while let Some(i) = fit.first_fitting(free.len()) {
            let t = &tasks[i];
            // Take the `alloc` lowest-indexed free processors.
            let procs = free.take_lowest(t.alloc);
            schedule.push(Placement {
                task: t.id,
                start: now,
                duration: t.duration,
                procs: procs.clone(),
            });
            events.push((Reverse(EventTime(now + t.duration)), procs));
            fit.set(i, usize::MAX);
            remaining -= 1;
        }
        if remaining == 0 {
            break;
        }
        // Advance time: to the next completion, or to the next release
        // if it comes sooner (or if no event is pending).
        let next_release = unreleased
            .peek()
            .map(|&Reverse((EventTime(r), _))| r)
            .unwrap_or(f64::INFINITY);
        let next_event = events
            .peek()
            .map(|(Reverse(EventTime(t)), _)| *t)
            .unwrap_or(f64::INFINITY);
        let next = next_event.min(next_release);
        assert!(
            next.is_finite(),
            "list engine stalled: no event and no release"
        );
        now = next;
        // Release all processors freed at (or before) `now`.
        while let Some((Reverse(EventTime(t)), _)) = events.peek() {
            if *t <= now + 1e-15 {
                // Peek just returned Some under the same borrow, so
                // pop yields that event; the if-let keeps this panic-free.
                if let Some((_, procs)) = events.pop() {
                    free.release(&procs);
                }
            } else {
                break;
            }
        }
    }
    schedule
}

/// Strict-order placement on the availability [`Frontier`]: each task
/// claims its `alloc` earliest-available processors (ties by lowest
/// index) in amortized `O(log E + alloc)` — the skyline replacement for
/// sorting all `m` availability times per task.
fn ordered(m: usize, tasks: &[ListTask]) -> Schedule {
    let mut schedule = Schedule::new(m);
    let mut frontier = Frontier::new(m);
    for t in tasks {
        let (start, procs) = frontier.claim(t.alloc, t.ready, t.duration);
        schedule.push(Placement {
            task: t.id,
            start,
            duration: t.duration,
            procs,
        });
    }
    schedule
}

/// The pre-skyline engines, verbatim: full task-list rescans and free
/// list re-sorts. Reference semantics for the differential tests.
mod scan {
    use super::{EventTime, ListTask};
    use crate::{Placement, Schedule};
    use demt_model::ProcSet;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    pub(super) fn greedy(m: usize, tasks: &[ListTask]) -> Schedule {
        let mut schedule = Schedule::new(m);
        let n = tasks.len();
        let mut placed = vec![false; n];
        let mut remaining = n;

        // Free processors as a sorted free-list (indices ascending).
        let mut free: Vec<u32> = (0..m as u32).collect();
        // Completion events: (time, processors to release).
        let mut events: BinaryHeap<(Reverse<EventTime>, Vec<u32>)> = BinaryHeap::new();
        let mut now = 0.0_f64;

        while remaining > 0 {
            // Start every fitting ready task, in list order. Restart the
            // scan after each placement: an earlier non-fitting task never
            // blocks later ones (Graham), but placements change the free
            // count.
            let mut progress = true;
            while progress {
                progress = false;
                for (i, t) in tasks.iter().enumerate() {
                    if placed[i] || t.ready > now + 1e-15 || t.alloc > free.len() {
                        continue;
                    }
                    // Take the `alloc` lowest-indexed free processors.
                    // The scan engine keeps its Vec bookkeeping —
                    // reference semantics — and converts to the
                    // interval set only at the placement boundary.
                    let procs: Vec<u32> = free.drain(..t.alloc).collect();
                    schedule.push(Placement {
                        task: t.id,
                        start: now,
                        duration: t.duration,
                        procs: ProcSet::from_ids(procs.iter().copied()),
                    });
                    events.push((Reverse(EventTime(now + t.duration)), procs));
                    placed[i] = true;
                    remaining -= 1;
                    progress = true;
                }
            }
            if remaining == 0 {
                break;
            }
            // Advance time: to the next completion, or to the next release
            // if it comes sooner (or if no event is pending).
            let next_release = tasks
                .iter()
                .enumerate()
                .filter(|(i, t)| !placed[*i] && t.ready > now + 1e-15)
                .map(|(_, t)| t.ready)
                .fold(f64::INFINITY, f64::min);
            let next_event = events
                .peek()
                .map(|(Reverse(EventTime(t)), _)| *t)
                .unwrap_or(f64::INFINITY);
            let next = next_event.min(next_release);
            assert!(
                next.is_finite(),
                "list engine stalled: no event and no release"
            );
            now = next;
            // Release all processors freed at (or before) `now`.
            while let Some((Reverse(EventTime(t)), _)) = events.peek() {
                if *t <= now + 1e-15 {
                    // Peek just returned Some under the same borrow, so
                    // pop yields that event; the if-let keeps this
                    // panic-free.
                    if let Some((_, procs)) = events.pop() {
                        free.extend(procs);
                    }
                } else {
                    break;
                }
            }
            free.sort_unstable();
        }
        schedule
    }

    pub(super) fn ordered(m: usize, tasks: &[ListTask]) -> Schedule {
        let mut schedule = Schedule::new(m);
        // Per-processor availability time.
        let mut avail: Vec<(f64, u32)> = (0..m as u32).map(|q| (0.0, q)).collect();
        for t in tasks {
            // The k processors that free earliest give the earliest start.
            avail.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let start = avail[t.alloc - 1].0.max(t.ready);
            let mut procs: Vec<u32> = avail[..t.alloc].iter().map(|&(_, q)| q).collect();
            procs.sort_unstable();
            for slot in avail[..t.alloc].iter_mut() {
                slot.0 = start + t.duration;
            }
            schedule.push(Placement {
                task: t.id,
                start,
                duration: t.duration,
                procs: ProcSet::from_ids(procs),
            });
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lt(id: usize, alloc: usize, duration: f64) -> ListTask {
        ListTask::new(TaskId(id), alloc, duration)
    }

    #[test]
    fn greedy_packs_parallel_work() {
        // Two 2-proc tasks fit side by side on 4 processors.
        let s = list_schedule(4, &[lt(0, 2, 3.0), lt(1, 2, 3.0)], ListPolicy::Greedy);
        assert_eq!(s.makespan(), 3.0);
        assert_eq!(s.placements()[0].start, 0.0);
        assert_eq!(s.placements()[1].start, 0.0);
    }

    #[test]
    fn greedy_backfills_past_blocked_head() {
        // Head task needs 3 procs (blocked until t=2); the 1-proc task
        // behind it starts immediately.
        let tasks = [lt(0, 2, 2.0), lt(1, 3, 1.0), lt(2, 1, 1.0)];
        let s = list_schedule(3, &tasks, ListPolicy::Greedy);
        let p2 = s.placement_of(TaskId(2)).unwrap();
        assert_eq!(p2.start, 0.0, "Graham fills the idle processor");
        let p1 = s.placement_of(TaskId(1)).unwrap();
        assert_eq!(p1.start, 2.0);
        assert_eq!(s.makespan(), 3.0);
    }

    #[test]
    fn ordered_respects_strict_order() {
        let tasks = [lt(0, 2, 2.0), lt(1, 3, 1.0), lt(2, 1, 1.0)];
        let s = list_schedule(3, &tasks, ListPolicy::Ordered);
        let p1 = s.placement_of(TaskId(1)).unwrap();
        assert_eq!(p1.start, 2.0);
        // No hole-filling: the wide task 1 pushed the frontier of every
        // processor to t=3, so task 2 waits even though processor 2 was
        // idle during [0, 2) (contrast with the Greedy test above).
        let p2 = s.placement_of(TaskId(2)).unwrap();
        assert_eq!(p2.start, 3.0);
        assert_eq!(s.makespan(), 4.0);
    }

    #[test]
    fn ready_times_delay_starts() {
        let mut t = lt(0, 1, 1.0);
        t.ready = 5.0;
        for policy in [ListPolicy::Greedy, ListPolicy::Ordered] {
            let s = list_schedule(2, &[t], policy);
            assert_eq!(s.placements()[0].start, 5.0, "{policy:?}");
        }
    }

    #[test]
    fn greedy_graham_bound_on_sequential_tasks() {
        // 7 unit tasks, 3 procs: optimal 3 units; Graham ≤ 2-1/m times
        // optimal, and here it is exactly ceil(7/3) = 3.
        let tasks: Vec<ListTask> = (0..7).map(|i| lt(i, 1, 1.0)).collect();
        let s = list_schedule(3, &tasks, ListPolicy::Greedy);
        assert_eq!(s.makespan(), 3.0);
    }

    #[test]
    fn full_machine_tasks_serialize() {
        let tasks = [lt(0, 4, 1.0), lt(1, 4, 2.0)];
        let s = list_schedule(4, &tasks, ListPolicy::Greedy);
        assert_eq!(s.makespan(), 3.0);
        let p1 = s.placement_of(TaskId(1)).unwrap();
        assert_eq!(p1.start, 1.0);
    }

    #[test]
    fn both_policies_agree_on_independent_unit_tasks() {
        let tasks: Vec<ListTask> = (0..6).map(|i| lt(i, 1, 2.0)).collect();
        let g = list_schedule(6, &tasks, ListPolicy::Greedy);
        let o = list_schedule(6, &tasks, ListPolicy::Ordered);
        assert_eq!(g.makespan(), 2.0);
        assert_eq!(o.makespan(), 2.0);
    }

    #[test]
    #[should_panic(expected = "allotment")]
    fn oversized_allotment_rejected() {
        let _ = list_schedule(2, &[lt(0, 3, 1.0)], ListPolicy::Greedy);
    }

    #[test]
    fn try_list_schedule_reports_typed_errors() {
        assert_eq!(
            try_list_schedule(0, &[], ListPolicy::Greedy),
            Err(ListError::NoProcessors)
        );
        assert!(matches!(
            try_list_schedule(2, &[lt(0, 0, 1.0)], ListPolicy::Greedy),
            Err(ListError::BadAllotment { alloc: 0, .. })
        ));
        assert!(matches!(
            try_list_schedule(2, &[lt(0, 1, f64::NAN)], ListPolicy::Ordered),
            Err(ListError::BadDuration { .. })
        ));
        let mut t = lt(0, 1, 1.0);
        t.ready = -2.0;
        assert!(matches!(
            try_list_schedule(2, &[t], ListPolicy::Greedy),
            Err(ListError::BadReady { .. })
        ));
        // The panicking wrapper carries the same message.
        let err = try_list_schedule(2, &[lt(7, 5, 1.0)], ListPolicy::Greedy).unwrap_err();
        assert_eq!(err.to_string(), "T7: allotment 5 outside 1..=2");
    }

    #[test]
    fn empty_task_list_yields_empty_schedule() {
        for policy in [ListPolicy::Greedy, ListPolicy::Ordered] {
            let s = list_schedule(3, &[], policy);
            assert!(s.is_empty());
            let s = list_schedule_scan(3, &[], policy);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn skyline_and_scan_agree_on_fixed_corner_cases() {
        // Ties everywhere: equal durations, equal ready times, widths
        // that exactly exhaust the machine, a blocked head.
        let cases: Vec<(usize, Vec<ListTask>)> = vec![
            (1, vec![lt(0, 1, 1.0), lt(1, 1, 1.0), lt(2, 1, 1.0)]),
            (
                4,
                vec![lt(0, 4, 2.0), lt(1, 2, 2.0), lt(2, 2, 2.0), lt(3, 3, 1.0)],
            ),
            (5, {
                let mut v = vec![lt(0, 5, 1.5), lt(1, 1, 3.0), lt(2, 4, 1.5)];
                v[1].ready = 1.5;
                v.push(lt(3, 2, 1.5));
                v
            }),
            (
                6,
                (0..12)
                    .map(|i| lt(i, 1 + i % 3, 0.5 + (i % 4) as f64))
                    .collect(),
            ),
        ];
        for (m, tasks) in cases {
            for policy in [ListPolicy::Greedy, ListPolicy::Ordered] {
                let sky = list_schedule(m, &tasks, policy);
                let scan = list_schedule_scan(m, &tasks, policy);
                assert_eq!(sky, scan, "m={m}, {policy:?}");
            }
        }
    }
}
