//! Full schedule audit.
//!
//! Algorithms in this workspace never trust themselves: every scheduler
//! output is re-checked against the instance by [`validate`] (or
//! [`validate_with_releases`] in the on-line setting), which verifies
//! all invariants of a feasible moldable-task schedule.

use crate::{Placement, Schedule};
use demt_model::{approx_eq, Instance, TaskId, REL_EPS};
use std::fmt;

/// Violations detected by the validator.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// A task appears in no placement.
    MissingTask(TaskId),
    /// A task appears in several placements.
    DuplicateTask(TaskId),
    /// A placement references a task id outside the instance.
    UnknownTask(TaskId),
    /// A placement has an empty processor set.
    EmptyAllotment(TaskId),
    /// Processor set contains an out-of-range id (`≥ m`); sortedness
    /// and uniqueness are structural `ProcSet` invariants.
    BadProcessorSet(TaskId),
    /// Placement duration disagrees with `pᵢ(k)` for its allotment.
    WrongDuration {
        /// Offending task.
        task: TaskId,
        /// Duration recorded in the placement.
        placed: f64,
        /// `pᵢ(k)` from the instance.
        expected: f64,
    },
    /// A task starts before time 0 (or before its release date).
    StartsTooEarly {
        /// Offending task.
        task: TaskId,
        /// Its start time.
        start: f64,
        /// Earliest legal start.
        earliest: f64,
    },
    /// Two tasks overlap on a processor.
    ProcessorConflict {
        /// The processor.
        proc: u32,
        /// First task.
        a: TaskId,
        /// Second task.
        b: TaskId,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ValidationError::MissingTask(t) => write!(f, "{t} is not scheduled"),
            ValidationError::DuplicateTask(t) => write!(f, "{t} is scheduled more than once"),
            ValidationError::UnknownTask(t) => write!(f, "{t} does not exist in the instance"),
            ValidationError::EmptyAllotment(t) => write!(f, "{t} has an empty processor set"),
            ValidationError::BadProcessorSet(t) => {
                write!(f, "{t} has an out-of-range processor set")
            }
            ValidationError::WrongDuration {
                task,
                placed,
                expected,
            } => {
                write!(f, "{task}: placed duration {placed} but p(k) = {expected}")
            }
            ValidationError::StartsTooEarly {
                task,
                start,
                earliest,
            } => {
                write!(
                    f,
                    "{task}: starts at {start} before its earliest legal start {earliest}"
                )
            }
            ValidationError::ProcessorConflict { proc, a, b } => {
                write!(f, "processor {proc}: {a} and {b} overlap")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates an off-line schedule (all tasks available at time 0).
pub fn validate(instance: &Instance, schedule: &Schedule) -> Result<(), ValidationError> {
    validate_with_releases(instance, schedule, None)
}

/// Validates a schedule with optional per-task release dates (indexed by
/// task id; `None` means all zero).
pub fn validate_with_releases(
    instance: &Instance,
    schedule: &Schedule,
    releases: Option<&[f64]>,
) -> Result<(), ValidationError> {
    let n = instance.len();
    let m = instance.procs();
    if let Some(r) = releases {
        assert_eq!(r.len(), n, "release vector length mismatch");
    }

    let mut seen = vec![false; n];

    for p in schedule.placements() {
        let id = p.task;
        if id.index() >= n {
            return Err(ValidationError::UnknownTask(id));
        }
        if seen[id.index()] {
            return Err(ValidationError::DuplicateTask(id));
        }
        seen[id.index()] = true;

        if p.procs.is_empty() {
            return Err(ValidationError::EmptyAllotment(id));
        }
        if p.procs.last().is_some_and(|x| x as usize >= m) {
            return Err(ValidationError::BadProcessorSet(id));
        }

        let expected = instance.task(id).time(p.procs.len());
        if !approx_eq(p.duration, expected) {
            return Err(ValidationError::WrongDuration {
                task: id,
                placed: p.duration,
                expected,
            });
        }

        let earliest = releases.map(|r| r[id.index()]).unwrap_or(0.0);
        if p.start < earliest - REL_EPS * earliest.abs().max(1.0) {
            return Err(ValidationError::StartsTooEarly {
                task: id,
                start: p.start,
                earliest,
            });
        }
    }

    if let Some(missing) = seen.iter().position(|&s| !s) {
        return Err(ValidationError::MissingTask(TaskId(missing)));
    }

    sweep_overlaps(schedule.placements())
}

/// Interval-direct overlap audit: placements are swept in start order
/// and every pair that is co-active in time has its processor sets
/// intersected as interval sets — no per-id expansion, `O(n log n)`
/// plus intersections over the (typically tiny) co-active front.
fn sweep_overlaps(placements: &[Placement]) -> Result<(), ValidationError> {
    let mut order: Vec<usize> = (0..placements.len()).collect();
    order.sort_by(|&a, &b| placements[a].start.total_cmp(&placements[b].start));
    let mut active: Vec<usize> = Vec::new();
    for &bi in &order {
        let b = &placements[bi];
        // Drop placements finished by `b.start`; touching is fine, only
        // true overlap (same tolerance as the historical per-proc
        // check) keeps a placement co-active.
        active.retain(|&ai| {
            let end_a = placements[ai].completion();
            b.start < end_a - REL_EPS * end_a.abs().max(1.0)
        });
        for &ai in &active {
            let a = &placements[ai];
            if let Some(q) = a.procs.intersect(&b.procs).first() {
                return Err(ValidationError::ProcessorConflict {
                    proc: q,
                    a: a.task,
                    b: b.task,
                });
            }
        }
        active.push(bi);
    }
    Ok(())
}

/// Instance-free structural audit: every processor set is within
/// range and no two placements overlap on a processor, checked
/// directly on the interval representation (sortedness and
/// disjointness are `ProcSet` invariants). This is the check
/// available when a schedule has no backing [`Instance`] — raw
/// [`crate::ListTask`] lists in the skyline differential suite, CLI
/// grids — where the full [`validate`] cannot run (durations and
/// completeness need the instance).
pub fn validate_no_overlap(schedule: &Schedule) -> Result<(), ValidationError> {
    let m = schedule.procs();
    for p in schedule.placements() {
        if p.procs.is_empty() {
            return Err(ValidationError::EmptyAllotment(p.task));
        }
        if p.procs.last().is_some_and(|x| x as usize >= m) {
            return Err(ValidationError::BadProcessorSet(p.task));
        }
    }
    sweep_overlaps(schedule.placements())
}

/// Panicking wrapper for tests and examples.
pub fn assert_valid(instance: &Instance, schedule: &Schedule) {
    if let Err(e) = validate(instance, schedule) {
        // demt-lint: allow(P1, documented panicking wrapper for tests and examples; validate is the fallible path)
        panic!("invalid schedule: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Placement;
    use demt_model::InstanceBuilder;

    fn instance() -> Instance {
        let mut b = InstanceBuilder::new(3);
        b.push_times(1.0, vec![4.0, 2.0, 1.5]).unwrap();
        b.push_times(1.0, vec![3.0, 2.0, 2.0]).unwrap();
        b.build().unwrap()
    }

    fn ok_schedule() -> Schedule {
        let mut s = Schedule::new(3);
        s.push(Placement {
            task: TaskId(0),
            start: 0.0,
            duration: 2.0,
            procs: vec![0, 1].into(),
        });
        s.push(Placement {
            task: TaskId(1),
            start: 2.0,
            duration: 2.0,
            procs: vec![1, 2].into(),
        });
        s
    }

    #[test]
    fn accepts_feasible_schedule() {
        validate(&instance(), &ok_schedule()).unwrap();
    }

    #[test]
    fn accepts_back_to_back_on_same_processor() {
        // Task 1 starts exactly when task 0 ends on processor 1.
        validate(&instance(), &ok_schedule()).unwrap();
    }

    #[test]
    fn detects_missing_task() {
        let mut s = Schedule::new(3);
        s.push(Placement {
            task: TaskId(0),
            start: 0.0,
            duration: 2.0,
            procs: vec![0, 1].into(),
        });
        assert_eq!(
            validate(&instance(), &s),
            Err(ValidationError::MissingTask(TaskId(1)))
        );
    }

    #[test]
    fn detects_duplicate_and_unknown() {
        let mut s = ok_schedule();
        s.push(Placement {
            task: TaskId(0),
            start: 5.0,
            duration: 4.0,
            procs: vec![0].into(),
        });
        assert_eq!(
            validate(&instance(), &s),
            Err(ValidationError::DuplicateTask(TaskId(0)))
        );

        let mut s = ok_schedule();
        s.push(Placement {
            task: TaskId(9),
            start: 5.0,
            duration: 1.0,
            procs: vec![0].into(),
        });
        assert_eq!(
            validate(&instance(), &s),
            Err(ValidationError::UnknownTask(TaskId(9)))
        );
    }

    #[test]
    fn detects_wrong_duration() {
        let mut s = ok_schedule();
        s.placements_mut()[0].duration = 3.0; // p(2) is 2.0
        assert!(matches!(
            validate(&instance(), &s),
            Err(ValidationError::WrongDuration {
                task: TaskId(0),
                ..
            })
        ));
    }

    #[test]
    fn detects_overlap() {
        let mut s = Schedule::new(3);
        s.push(Placement {
            task: TaskId(0),
            start: 0.0,
            duration: 2.0,
            procs: vec![0, 1].into(),
        });
        s.push(Placement {
            task: TaskId(1),
            start: 1.0,
            duration: 2.0,
            procs: vec![1, 2].into(),
        });
        assert!(matches!(
            validate(&instance(), &s),
            Err(ValidationError::ProcessorConflict { proc: 1, .. })
        ));
    }

    #[test]
    fn detects_bad_processor_sets() {
        // Unsorted id lists are unrepresentable now: conversion
        // canonicalizes, so the old `[1, 0]` failure mode is gone.
        let mut s = ok_schedule();
        s.placements_mut()[0].procs = vec![1, 0].into();
        validate(&instance(), &s).unwrap();

        let mut s = ok_schedule();
        s.placements_mut()[0].procs = vec![0, 7].into();
        assert_eq!(
            validate(&instance(), &s),
            Err(ValidationError::BadProcessorSet(TaskId(0)))
        );

        let mut s = ok_schedule();
        s.placements_mut()[0].procs = demt_model::ProcSet::new();
        assert_eq!(
            validate(&instance(), &s),
            Err(ValidationError::EmptyAllotment(TaskId(0)))
        );
    }

    #[test]
    fn instance_free_audit_catches_overlap_only() {
        // A schedule that is structurally sound but incomplete passes
        // the instance-free audit (no MissingTask without an instance)…
        let mut s = Schedule::new(3);
        s.push(Placement {
            task: TaskId(0),
            start: 0.0,
            duration: 2.0,
            procs: vec![0, 1].into(),
        });
        validate_no_overlap(&s).unwrap();
        // …while a forced overlap is still caught.
        s.push(Placement {
            task: TaskId(1),
            start: 1.0,
            duration: 2.0,
            procs: vec![1].into(),
        });
        assert!(matches!(
            validate_no_overlap(&s),
            Err(ValidationError::ProcessorConflict { proc: 1, .. })
        ));
        // …as are malformed processor sets.
        let mut s = Schedule::new(2);
        s.push(Placement {
            task: TaskId(0),
            start: 0.0,
            duration: 1.0,
            procs: vec![5].into(),
        });
        assert_eq!(
            validate_no_overlap(&s),
            Err(ValidationError::BadProcessorSet(TaskId(0)))
        );
    }

    #[test]
    fn detects_negative_start_and_release_violation() {
        let mut s = ok_schedule();
        s.placements_mut()[0].start = -0.5;
        assert!(matches!(
            validate(&instance(), &s),
            Err(ValidationError::StartsTooEarly {
                task: TaskId(0),
                ..
            })
        ));

        let s = ok_schedule();
        let releases = vec![0.0, 3.0];
        assert!(matches!(
            validate_with_releases(&instance(), &s, Some(&releases)),
            Err(ValidationError::StartsTooEarly {
                task: TaskId(1),
                ..
            })
        ));
        let releases = vec![0.0, 2.0];
        validate_with_releases(&instance(), &s, Some(&releases)).unwrap();
    }
}
