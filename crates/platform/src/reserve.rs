//! Reservation-aware scheduling (conservative backfilling).
//!
//! The paper's §5 lists "the reservation of nodes which reduces the
//! size of the cluster" as the main open engineering problem of the
//! production deployment; §1.2 cites MAUI's backfilling as the state of
//! practice. This module implements that machinery: a list scheduler
//! over per-processor **busy-interval profiles** which honours
//! pre-existing [`Reservation`]s (maintenance windows, admin holds,
//! advance reservations) and backfills tasks into the earliest hole
//! their allotment fits — the conservative-backfilling discipline
//! (earlier list entries are placed first and later entries can never
//! delay them).
//!
//! ## Skyline pre-filtering
//!
//! The exact fit test must inspect per-processor profiles (it needs
//! `alloc` *specific* processors idle for the whole window), which
//! costs `O(m · busy)` per candidate start. A [`Skyline`] of aggregate
//! busy counts now runs in front of it: a window where the instantaneous
//! free *count* ever drops below `alloc` can never pass the identity
//! check, so [`Skyline::earliest_fit`] skips the hopeless prefix of the
//! candidate list outright and [`Skyline::min_free_in`] discards most
//! surviving candidates in `O(log E)` before the expensive scan runs.
//! Busy windows enter the skyline shrunk by the identity check's own
//! `1e-12` tolerance on each side, which keeps the filter *sound*: it
//! only rejects candidates the exact check would also reject, so
//! placements are exactly what the unfiltered scan produced.

use crate::{ListTask, Placement, Schedule, Skyline};
use demt_model::ProcSet;

/// Absolute slack mirrored from `Profile::free_during`'s `1e-12`
/// tolerance: see the module docs on skyline pre-filtering.
const TOL: f64 = 1e-12;

/// Commits `[start, end)` shrunk by [`TOL`] on each side (skipping
/// windows the shrink degenerates) so the count skyline never calls
/// busy what the tolerant per-processor check calls free.
fn commit_shrunk(sky: &mut Skyline, start: f64, end: f64, k: usize) {
    let (a, b) = (start + TOL, end - TOL);
    if b > a {
        sky.commit(a, b - a, k);
    }
}

/// A block of processors withheld from the scheduler for a time window.
#[derive(Debug, Clone, PartialEq)]
pub struct Reservation {
    /// Start of the window.
    pub start: f64,
    /// Length of the window (must be positive).
    pub duration: f64,
    /// Processor indices withheld (sorted, unique, < m).
    pub procs: Vec<u32>,
}

impl Reservation {
    /// End of the window.
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }
}

/// Per-processor profile of busy intervals, kept sorted and disjoint.
#[derive(Debug, Clone, Default)]
struct Profile {
    /// `(start, end)` busy windows, sorted by start, non-overlapping.
    busy: Vec<(f64, f64)>,
}

impl Profile {
    /// True when the processor is idle during the whole `[s, e)`.
    fn free_during(&self, s: f64, e: f64) -> bool {
        self.busy
            .iter()
            .all(|&(bs, be)| e <= bs + 1e-12 || s >= be - 1e-12)
    }

    /// Inserts a busy window, keeping the list sorted.
    fn occupy(&mut self, s: f64, e: f64) {
        debug_assert!(self.free_during(s, e), "double booking");
        let pos = self.busy.partition_point(|&(bs, _)| bs < s);
        self.busy.insert(pos, (s, e));
    }
}

/// Schedules `tasks` (in list order, conservative — no task ever delays
/// an earlier one) around the given reservations on `m` processors.
///
/// Each task starts at the earliest instant ≥ its ready time where
/// `alloc` processors are simultaneously idle for its whole duration,
/// holes included. Panics on malformed reservations (processor out of
/// range, overlapping windows on one processor, non-positive duration)
/// and on malformed tasks (allotment, duration or ready time out of
/// range) — inputs here are internal invariants, unlike
/// [`crate::try_list_schedule`]'s.
pub fn backfill_schedule(m: usize, tasks: &[ListTask], reservations: &[Reservation]) -> Schedule {
    let mut profiles: Vec<Profile> = vec![Profile::default(); m];
    let mut sky = Skyline::new(m);
    for r in reservations {
        assert!(
            r.duration > 0.0 && r.start >= 0.0,
            "malformed reservation window"
        );
        assert!(
            r.procs.windows(2).all(|w| w[0] < w[1]),
            "reservation procs must be sorted unique"
        );
        for &q in &r.procs {
            assert!((q as usize) < m, "reservation processor {q} out of range");
            assert!(
                profiles[q as usize].free_during(r.start, r.end()),
                "overlapping reservations on processor {q}"
            );
            profiles[q as usize].occupy(r.start, r.end());
        }
        commit_shrunk(&mut sky, r.start, r.end(), r.procs.len());
    }

    let mut schedule = Schedule::new(m);
    for t in tasks {
        assert!(
            t.alloc >= 1 && t.alloc <= m,
            "{}: allotment out of range",
            t.id
        );
        assert!(
            t.duration.is_finite() && t.duration > 0.0,
            "{}: bad duration",
            t.id
        );
        assert!(
            t.ready.is_finite() && t.ready >= 0.0,
            "{}: bad ready time",
            t.id
        );
        // Candidate starts: the ready time plus every busy-interval end
        // point at or after it. One of these is optimal because the set
        // of feasible starts is a union of left-closed intervals whose
        // left ends are exactly these candidates.
        let mut candidates: Vec<f64> = vec![t.ready];
        for p in &profiles {
            for &(_, be) in &p.busy {
                if be > t.ready - 1e-12 {
                    candidates.push(be);
                }
            }
        }
        candidates.sort_by(|a, b| a.total_cmp(b));
        candidates.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        // Skyline pre-filter: jump over the prefix where the free
        // *count* can never reach `alloc` (sound — see module docs),
        // then discard count-infeasible candidates before paying for
        // the exact per-processor scan. Candidates may sit up to 1e-12
        // before the ready time (the dedup slack), so the fit query
        // starts there too.
        let fit_from = (t.ready - TOL).max(0.0);
        let fast = sky.earliest_fit(fit_from, t.duration, t.alloc);
        let viable = candidates.partition_point(|&s| s < fast);

        let mut placed = false;
        for &s in &candidates[viable..] {
            let e = s + t.duration;
            if sky.min_free_in(s, e) < t.alloc {
                continue;
            }
            let free: Vec<u32> = (0..m as u32)
                .filter(|&q| profiles[q as usize].free_during(s, e))
                .collect();
            if free.len() >= t.alloc {
                let procs: Vec<u32> = free[..t.alloc].to_vec();
                for &q in &procs {
                    profiles[q as usize].occupy(s, e);
                }
                commit_shrunk(&mut sky, s, e, t.alloc);
                schedule.push(Placement {
                    task: t.id,
                    start: s,
                    duration: t.duration,
                    procs: ProcSet::from_ids(procs),
                });
                placed = true;
                break;
            }
        }
        assert!(
            placed,
            "{}: no feasible start exists (should be impossible)",
            t.id
        );
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use demt_model::TaskId;

    fn lt(id: usize, alloc: usize, duration: f64) -> ListTask {
        ListTask::new(TaskId(id), alloc, duration)
    }

    fn maintenance(start: f64, duration: f64, procs: &[u32]) -> Reservation {
        Reservation {
            start,
            duration,
            procs: procs.to_vec(),
        }
    }

    #[test]
    fn no_reservations_behaves_like_plain_backfilling() {
        let s = backfill_schedule(2, &[lt(0, 1, 2.0), lt(1, 1, 2.0), lt(2, 2, 1.0)], &[]);
        assert_eq!(s.placement_of(TaskId(0)).unwrap().start, 0.0);
        assert_eq!(s.placement_of(TaskId(1)).unwrap().start, 0.0);
        assert_eq!(s.placement_of(TaskId(2)).unwrap().start, 2.0);
    }

    #[test]
    fn tasks_route_around_a_maintenance_window() {
        // Processor 1 is down during [0, 5): the 2-proc task must wait,
        // the 1-proc tasks use processor 0 meanwhile.
        let res = [maintenance(0.0, 5.0, &[1])];
        let s = backfill_schedule(2, &[lt(0, 2, 1.0), lt(1, 1, 2.0)], &res);
        let wide = s.placement_of(TaskId(0)).unwrap();
        assert_eq!(wide.start, 5.0, "wide task waits out the window");
        let thin = s.placement_of(TaskId(1)).unwrap();
        assert_eq!(thin.start, 0.0, "thin task backfills on the live node");
        assert_eq!(thin.procs, ProcSet::range(0, 0));
    }

    #[test]
    fn task_fits_into_a_hole_between_reservations() {
        // Window [0,1) and [3,10) on the only processor: a 2-unit task
        // fits exactly into the [1,3) hole.
        let res = [maintenance(0.0, 1.0, &[0]), maintenance(3.0, 7.0, &[0])];
        let s = backfill_schedule(1, &[lt(0, 1, 2.0)], &res);
        assert_eq!(s.placement_of(TaskId(0)).unwrap().start, 1.0);
        // A 3-unit task does not fit the hole and waits for the end.
        let s = backfill_schedule(1, &[lt(0, 1, 3.0)], &res);
        assert_eq!(s.placement_of(TaskId(0)).unwrap().start, 10.0);
    }

    #[test]
    fn conservative_order_is_respected() {
        // Task 0 (wide) is first in the list: it claims [0,1) on both
        // procs even though task 1 alone could start at 0. Task 1 then
        // backfills after it.
        let s = backfill_schedule(2, &[lt(0, 2, 1.0), lt(1, 1, 1.0)], &[]);
        assert_eq!(s.placement_of(TaskId(0)).unwrap().start, 0.0);
        assert_eq!(s.placement_of(TaskId(1)).unwrap().start, 1.0);
    }

    #[test]
    fn ready_times_combine_with_reservations() {
        let res = [maintenance(2.0, 2.0, &[0])];
        let mut t = lt(0, 1, 1.0);
        t.ready = 1.5;
        let s = backfill_schedule(1, &[t], &res);
        // Ready at 1.5 but only a 0.5 hole before the window: start 4.
        assert_eq!(s.placement_of(TaskId(0)).unwrap().start, 4.0);
    }

    #[test]
    #[should_panic(expected = "overlapping reservations")]
    fn overlapping_reservations_are_rejected() {
        let res = [maintenance(0.0, 2.0, &[0]), maintenance(1.0, 2.0, &[0])];
        let _ = backfill_schedule(1, &[lt(0, 1, 1.0)], &res);
    }

    #[test]
    fn reservations_never_collide_with_placements() {
        // Stress: staggered windows + many tasks; re-check every
        // placement against every reservation by hand.
        let res = [
            maintenance(0.0, 3.0, &[0, 1]),
            maintenance(4.0, 2.0, &[2]),
            maintenance(1.0, 6.0, &[3]),
        ];
        let tasks: Vec<ListTask> = (0..12)
            .map(|i| lt(i, 1 + i % 3, 0.5 + (i % 4) as f64 * 0.7))
            .collect();
        let s = backfill_schedule(4, &tasks, &res);
        assert_eq!(s.len(), 12);
        for p in s.placements() {
            for r in &res {
                for &q in &r.procs {
                    if p.procs.contains(q) {
                        let disjoint =
                            p.completion() <= r.start + 1e-9 || p.start >= r.end() - 1e-9;
                        assert!(disjoint, "{} collides with reservation on {q}", p.task);
                    }
                }
            }
        }
    }
}
