//! Schedule compaction passes.
//!
//! The paper (§3.2) improves the raw batched schedule in stages; the
//! generic, algorithm-independent piece lives here:
//! [`pull_earlier`] implements "start a task at an earlier time if all
//! the processors it uses are idle" — every placement keeps its
//! processor set but slides left onto the availability profile built by
//! its predecessors (in start-time order).
//!
//! The stronger compaction (re-running the list engine with the batch
//! ordering, which may *reassign* processor sets) is
//! [`crate::list_schedule`] on its skyline engine; DEMT wires the two
//! together in `demt-core`. `pull_earlier` itself needs no skyline: it
//! keeps processor sets, so one availability slot per processor
//! (`O(Σkᵢ + n log n)` total) is already optimal.

use crate::{Placement, Schedule};

/// Slides every placement as far left as its own processor set allows,
/// preserving processor assignments and the relative order of conflicts.
/// Optional `ready[task]` lower bounds are honoured (on-line setting).
///
/// The result is feasible whenever the input is, starts never increase,
/// and a second application is a no-op (the pass is idempotent).
pub fn pull_earlier(schedule: &Schedule, ready: Option<&[f64]>) -> Schedule {
    let m = schedule.procs();
    let mut order: Vec<usize> = (0..schedule.len()).collect();
    order.sort_by(|&a, &b| {
        let pa = &schedule.placements()[a];
        let pb = &schedule.placements()[b];
        pa.start.total_cmp(&pb.start).then(pa.task.cmp(&pb.task))
    });
    let mut avail = vec![0.0_f64; m];
    let mut out = Vec::with_capacity(schedule.len());
    for idx in order {
        let p = &schedule.placements()[idx];
        let floor = ready.map(|r| r[p.task.index()]).unwrap_or(0.0);
        let start = p
            .procs
            .iter()
            .map(|q| avail[q as usize])
            .fold(floor, f64::max);
        debug_assert!(
            start <= p.start + 1e-9,
            "pull_earlier must never delay a task"
        );
        for q in &p.procs {
            avail[q as usize] = start + p.duration;
        }
        out.push(Placement {
            task: p.task,
            start,
            duration: p.duration,
            procs: p.procs.clone(),
        });
    }
    Schedule::from_placements(m, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use demt_model::TaskId;

    fn placement(task: usize, start: f64, duration: f64, procs: &[u32]) -> Placement {
        Placement {
            task: TaskId(task),
            start,
            duration,
            procs: procs.into(),
        }
    }

    #[test]
    fn slides_into_leading_idle_time() {
        let mut s = Schedule::new(2);
        s.push(placement(0, 3.0, 1.0, &[0]));
        s.push(placement(1, 5.0, 2.0, &[0, 1]));
        let c = pull_earlier(&s, None);
        assert_eq!(c.placement_of(TaskId(0)).unwrap().start, 0.0);
        assert_eq!(c.placement_of(TaskId(1)).unwrap().start, 1.0);
        assert_eq!(c.makespan(), 3.0);
    }

    #[test]
    fn keeps_processor_sets() {
        let mut s = Schedule::new(3);
        s.push(placement(0, 2.0, 1.0, &[1, 2]));
        let c = pull_earlier(&s, None);
        assert_eq!(
            c.placement_of(TaskId(0)).unwrap().procs,
            demt_model::ProcSet::range(1, 2)
        );
    }

    #[test]
    fn respects_conflicts_on_shared_processors() {
        let mut s = Schedule::new(2);
        s.push(placement(0, 0.0, 2.0, &[0]));
        s.push(placement(1, 4.0, 1.0, &[0]));
        s.push(placement(2, 4.0, 1.0, &[1]));
        let c = pull_earlier(&s, None);
        assert_eq!(
            c.placement_of(TaskId(1)).unwrap().start,
            2.0,
            "blocked by task 0"
        );
        assert_eq!(
            c.placement_of(TaskId(2)).unwrap().start,
            0.0,
            "free processor"
        );
    }

    #[test]
    fn is_idempotent() {
        let mut s = Schedule::new(2);
        s.push(placement(0, 1.0, 2.0, &[0]));
        s.push(placement(1, 4.0, 1.0, &[0, 1]));
        let once = pull_earlier(&s, None);
        let twice = pull_earlier(&once, None);
        assert_eq!(once, twice);
    }

    #[test]
    fn honors_ready_floors() {
        let mut s = Schedule::new(1);
        s.push(placement(0, 6.0, 1.0, &[0]));
        let ready = vec![2.5];
        let c = pull_earlier(&s, Some(&ready));
        assert_eq!(c.placement_of(TaskId(0)).unwrap().start, 2.5);
    }

    #[test]
    fn never_increases_makespan() {
        let mut s = Schedule::new(3);
        s.push(placement(0, 0.0, 3.0, &[0, 1]));
        s.push(placement(1, 3.0, 2.0, &[1, 2]));
        s.push(placement(2, 5.0, 1.0, &[0]));
        let before = s.makespan();
        let c = pull_earlier(&s, None);
        assert!(c.makespan() <= before + 1e-12);
    }
}
