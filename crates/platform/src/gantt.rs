//! ASCII Gantt rendering for examples and debugging.

use crate::Schedule;

/// Renders a schedule as an ASCII Gantt chart: one row per processor,
/// time flowing left to right over `width` columns, each cell showing
/// the task occupying the processor at that instant (`.` for idle).
/// Tasks are labelled by id modulo an alphanumeric alphabet, so charts
/// are only unambiguous for small demos — which is their purpose.
pub fn render_gantt(schedule: &Schedule, width: usize) -> String {
    const ALPHABET: &[u8] = b"0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
    let width = width.max(10);
    let horizon = schedule.makespan();
    let m = schedule.procs();
    if horizon <= 0.0 || schedule.is_empty() {
        return format!("(empty schedule on {m} processors)\n");
    }
    let mut grid = vec![vec![b'.'; width]; m];
    for p in schedule.placements() {
        let c0 = ((p.start / horizon) * width as f64).floor() as usize;
        let c1 = ((p.completion() / horizon) * width as f64).ceil() as usize;
        let c1 = c1.clamp(c0 + 1, width);
        let label = ALPHABET[p.task.index() % ALPHABET.len()];
        for q in &p.procs {
            for cell in grid[q as usize][c0..c1].iter_mut() {
                *cell = label;
            }
        }
    }
    let mut out = String::with_capacity((width + 16) * (m + 2));
    out.push_str(&format!("t = 0 {:>w$.2}\n", horizon, w = width));
    for (q, row) in grid.iter().enumerate() {
        out.push_str(&format!("p{q:<3} |"));
        // demt-lint: allow(P1, grid cells are only ever written ascii label bytes)
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Placement;
    use demt_model::TaskId;

    #[test]
    fn renders_tasks_and_idle_time() {
        let mut s = Schedule::new(2);
        s.push(Placement {
            task: TaskId(0),
            start: 0.0,
            duration: 5.0,
            procs: vec![0].into(),
        });
        s.push(Placement {
            task: TaskId(1),
            start: 5.0,
            duration: 5.0,
            procs: vec![0, 1].into(),
        });
        let g = render_gantt(&s, 20);
        assert!(g.contains('0'), "{g}");
        assert!(g.contains('1'), "{g}");
        assert!(g.contains('.'), "processor 1 idles early:\n{g}");
        assert_eq!(g.lines().count(), 3);
    }

    #[test]
    fn empty_schedule_renders_placeholder() {
        let s = Schedule::new(3);
        assert!(render_gantt(&s, 40).contains("empty schedule"));
    }

    #[test]
    fn every_processor_gets_a_row() {
        let mut s = Schedule::new(5);
        s.push(Placement {
            task: TaskId(0),
            start: 0.0,
            duration: 1.0,
            procs: vec![4].into(),
        });
        let g = render_gantt(&s, 12);
        assert_eq!(g.lines().count(), 6);
        assert!(g.lines().last().unwrap().contains('0'));
    }
}
