//! Fault injection on the validator: take a known-valid schedule, apply
//! a corrupting mutation, and demand rejection. This is the test that
//! keeps the "every algorithm output is re-audited" guarantee honest —
//! a validator that accepts garbage would silently void half the
//! workspace's test suite.

use demt_model::{Instance, InstanceBuilder, ProcSet, TaskId};
use demt_platform::{list_schedule, validate, ListPolicy, ListTask, Schedule, ValidationError};
use proptest::prelude::*;

fn instance_and_schedule() -> impl Strategy<Value = (Instance, Schedule)> {
    (2usize..5, 3usize..10).prop_flat_map(|(m, n)| {
        prop::collection::vec((0.5f64..8.0, 0.0f64..1.0, 1usize..5), n..=n).prop_map(move |rows| {
            let mut b = InstanceBuilder::new(m);
            let mut list = Vec::new();
            for (i, (seq, alpha, kraw)) in rows.iter().enumerate() {
                let times = demt_workload::recursive_times_const(*seq, m, *alpha);
                b.push_times(1.0, times).unwrap();
                let k = 1 + kraw % m;
                list.push((i, k));
            }
            let inst = b.build().unwrap();
            let tasks: Vec<ListTask> = list
                .into_iter()
                .map(|(i, k)| ListTask::new(TaskId(i), k, inst.task(TaskId(i)).time(k)))
                .collect();
            let s = list_schedule(m, &tasks, ListPolicy::Greedy);
            (inst, s)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn baseline_is_valid((inst, s) in instance_and_schedule()) {
        prop_assert!(validate(&inst, &s).is_ok());
    }

    #[test]
    fn dropping_a_placement_is_caught((inst, s) in instance_and_schedule(), pick in any::<prop::sample::Index>()) {
        let mut placements = s.placements().to_vec();
        let victim = pick.index(placements.len());
        placements.remove(victim);
        let broken = Schedule::from_placements(inst.procs(), placements);
        prop_assert!(matches!(validate(&inst, &broken), Err(ValidationError::MissingTask(_))));
    }

    #[test]
    fn duplicating_a_placement_is_caught((inst, s) in instance_and_schedule(), pick in any::<prop::sample::Index>()) {
        let mut placements = s.placements().to_vec();
        let victim = pick.index(placements.len());
        placements.push(placements[victim].clone());
        let broken = Schedule::from_placements(inst.procs(), placements);
        prop_assert!(matches!(validate(&inst, &broken), Err(ValidationError::DuplicateTask(_))));
    }

    #[test]
    fn shrinking_a_duration_is_caught((inst, s) in instance_and_schedule(), pick in any::<prop::sample::Index>()) {
        let mut placements = s.placements().to_vec();
        let victim = pick.index(placements.len());
        placements[victim].duration *= 0.5;
        let broken = Schedule::from_placements(inst.procs(), placements);
        let caught = matches!(validate(&inst, &broken), Err(ValidationError::WrongDuration { .. }));
        prop_assert!(caught);
    }

    #[test]
    fn negative_start_is_caught((inst, s) in instance_and_schedule(), pick in any::<prop::sample::Index>()) {
        let mut placements = s.placements().to_vec();
        let victim = pick.index(placements.len());
        placements[victim].start = -1.0;
        let broken = Schedule::from_placements(inst.procs(), placements);
        // Either the early start itself or a conflict it causes.
        prop_assert!(validate(&inst, &broken).is_err());
    }

    #[test]
    fn out_of_range_processor_is_caught((inst, s) in instance_and_schedule(), pick in any::<prop::sample::Index>()) {
        let mut placements = s.placements().to_vec();
        let victim = pick.index(placements.len());
        let mut ids = placements[victim].procs.to_ids();
        let last = ids.len() - 1;
        ids[last] = inst.procs() as u32 + 3;
        placements[victim].procs = ProcSet::from_ids(ids);
        let broken = Schedule::from_placements(inst.procs(), placements);
        prop_assert!(matches!(validate(&inst, &broken), Err(ValidationError::BadProcessorSet(_))));
    }

    #[test]
    fn forcing_overlap_is_caught((inst, s) in instance_and_schedule(), pick in any::<prop::sample::Index>()) {
        // Move a placement on top of another task on the same processor.
        let mut placements = s.placements().to_vec();
        if placements.len() < 2 {
            return Ok(());
        }
        let a = pick.index(placements.len());
        let b = (a + 1) % placements.len();
        // Give task b the same start and one shared processor as a.
        placements[b].start = placements[a].start;
        let shared = placements[a].procs.first().unwrap();
        if !placements[b].procs.contains(shared) {
            let mut ids = placements[b].procs.to_ids();
            ids[0] = shared;
            // from_ids re-canonicalizes (sorts, dedups) the mutated list.
            placements[b].procs = ProcSet::from_ids(ids);
            // Keep the duration consistent with the (possibly changed)
            // allotment so only the overlap can be the error.
            let k = placements[b].procs.len();
            placements[b].duration = inst.task(placements[b].task).time(k);
        }
        let broken = Schedule::from_placements(inst.procs(), placements);
        let verdict = validate(&inst, &broken);
        let caught = matches!(verdict, Err(ValidationError::ProcessorConflict { .. }));
        prop_assert!(caught, "mutated schedule unexpectedly accepted: {verdict:?}");
    }
}
