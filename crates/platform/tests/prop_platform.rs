//! Property tests for the platform substrate: the list engine always
//! emits valid schedules, compaction never hurts, the validator accepts
//! what the engine builds, and — the differential pin — the skyline
//! engine reproduces the retained scan reference **byte for byte** on
//! random allotments, ready times, both policies and degenerate ties.

use demt_model::{Instance, InstanceBuilder, TaskId};
use demt_platform::{
    backfill_schedule, list_schedule, list_schedule_scan, pull_earlier, validate,
    validate_no_overlap, Criteria, ListPolicy, ListTask, Reservation,
};
use proptest::prelude::*;

/// Random monotonic instance plus a per-task allotment choice.
fn arb_instance_with_allocs() -> impl Strategy<Value = (Instance, Vec<usize>)> {
    (2usize..6, 1usize..12)
        .prop_flat_map(|(m, n)| {
            let tasks = prop::collection::vec((0.5f64..10.0, 0.0f64..1.0, 0.1f64..9.9), n..=n);
            (Just(m), tasks)
        })
        .prop_map(|(m, raw)| {
            let mut b = InstanceBuilder::new(m);
            let mut allocs = Vec::new();
            for (seq, alpha, frac) in raw {
                // Build a monotonic vector via the constant-degree recursion.
                let times = demt_workload::recursive_times_const(seq, m, alpha);
                b.push_times(1.0, times).unwrap();
                allocs.push(1 + (frac * m as f64) as usize % m);
            }
            (b.build().unwrap(), allocs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn list_engine_output_is_always_valid((inst, allocs) in arb_instance_with_allocs()) {
        for policy in [ListPolicy::Greedy, ListPolicy::Ordered] {
            let tasks: Vec<ListTask> = inst
                .ids()
                .map(|id| {
                    let k = allocs[id.index()].min(inst.procs()).max(1);
                    ListTask::new(id, k, inst.task(id).time(k))
                })
                .collect();
            let s = list_schedule(inst.procs(), &tasks, policy);
            prop_assert!(validate(&inst, &s).is_ok(), "{policy:?}: {:?}", validate(&inst, &s));
        }
    }

    #[test]
    fn greedy_never_beats_area_bound((inst, allocs) in arb_instance_with_allocs()) {
        let tasks: Vec<ListTask> = inst
            .ids()
            .map(|id| {
                let k = allocs[id.index()].min(inst.procs()).max(1);
                ListTask::new(id, k, inst.task(id).time(k))
            })
            .collect();
        let s = list_schedule(inst.procs(), &tasks, ListPolicy::Greedy);
        // Makespan is at least total-area / m and at least the longest task.
        let area: f64 = tasks.iter().map(|t| t.alloc as f64 * t.duration).sum();
        let longest = tasks.iter().map(|t| t.duration).fold(0.0, f64::max);
        let lb = (area / inst.procs() as f64).max(longest);
        prop_assert!(s.makespan() >= lb - 1e-9, "makespan {} below bound {lb}", s.makespan());
    }

    #[test]
    fn pull_earlier_preserves_validity_and_improves((inst, allocs) in arb_instance_with_allocs()) {
        let tasks: Vec<ListTask> = inst
            .ids()
            .map(|id| {
                let k = allocs[id.index()].min(inst.procs()).max(1);
                ListTask::new(id, k, inst.task(id).time(k))
            })
            .collect();
        // Build a deliberately loose schedule: everything stacked with gaps.
        let mut loose = demt_platform::Schedule::new(inst.procs());
        let mut t0 = 1.0;
        for t in &tasks {
            loose.push(demt_platform::Placement {
                task: t.id,
                start: t0,
                duration: t.duration,
                procs: (0..t.alloc as u32).collect(),
            });
            t0 += t.duration + 0.5;
        }
        prop_assert!(validate(&inst, &loose).is_ok());
        let tight = pull_earlier(&loose, None);
        prop_assert!(validate(&inst, &tight).is_ok());
        let before = Criteria::evaluate(&inst, &loose);
        let after = Criteria::evaluate(&inst, &tight);
        prop_assert!(after.makespan <= before.makespan + 1e-9);
        prop_assert!(after.weighted_completion <= before.weighted_completion + 1e-9);
        // Idempotence.
        let again = pull_earlier(&tight, None);
        prop_assert_eq!(tight, again);
    }
}

/// Raw `ListTask` lists for the differential suite: durations and
/// ready times drawn from small discrete grids so exact f64 **ties**
/// (equal completion events, equal frontier groups, simultaneous
/// releases) occur constantly — the territory where an engine's tie
/// handling shows. The machine range crosses the 64-bit word boundary
/// so the greedy engine's free-processor bitset exercises multi-word
/// take/insert paths, not just word 0.
fn arb_raw_list() -> impl Strategy<Value = (usize, Vec<ListTask>)> {
    (1usize..150, 0usize..40)
        .prop_flat_map(|(m, n)| {
            let tasks =
                prop::collection::vec((0usize..100, 0usize..8, 0usize..6, 0usize..10), n..=n);
            (Just(m), tasks)
        })
        .prop_map(|(m, raw)| {
            const DURATIONS: [f64; 8] = [0.5, 1.0, 1.0, 1.5, 2.5, 2.5, 4.0, 0.125];
            const READIES: [f64; 6] = [0.0, 0.0, 0.0, 1.0, 2.5, 6.0];
            let tasks = raw
                .into_iter()
                .enumerate()
                .map(|(i, (kraw, draw, rraw, wide))| {
                    // ~10% full-machine tasks force serialization points.
                    let alloc = if wide == 0 { m } else { 1 + kraw % m };
                    let mut t = ListTask::new(TaskId(i), alloc, DURATIONS[draw]);
                    t.ready = READIES[rraw];
                    t
                })
                .collect();
            (m, tasks)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn skyline_engine_matches_scan_reference_byte_for_byte((m, tasks) in arb_raw_list()) {
        for policy in [ListPolicy::Greedy, ListPolicy::Ordered] {
            let sky = list_schedule(m, &tasks, policy);
            let scan = list_schedule_scan(m, &tasks, policy);
            prop_assert_eq!(&sky, &scan, "{:?}: schedules diverge", policy);
            // Byte-identical serialization, the form CI diffs.
            let a = serde_json::to_string(&sky).expect("serializable");
            let b = serde_json::to_string(&scan).expect("serializable");
            prop_assert_eq!(a, b, "{:?}: JSON bytes diverge", policy);
            // And no skyline placement ever overlaps on a processor.
            prop_assert!(validate_no_overlap(&sky).is_ok(), "{:?}: {:?}", policy, validate_no_overlap(&sky));
        }
    }

    #[test]
    fn backfill_prefilter_preserves_placements_and_never_overlaps(
        (m, tasks) in arb_raw_list(),
        rraw in prop::collection::vec((0usize..10, 1usize..4, 0usize..8), 0..3),
    ) {
        // Reservations derived from the drawn grid, staggered so they
        // never overlap on a processor: reservation j uses a disjoint
        // time window per proc stripe.
        let reservations: Vec<Reservation> = rraw
            .iter()
            .enumerate()
            .map(|(j, &(sraw, len, praw))| {
                let procs: Vec<u32> = (0..m as u32).filter(|q| (*q as usize + praw).is_multiple_of(3)).collect();
                Reservation {
                    start: 20.0 * j as f64 + sraw as f64,
                    duration: len as f64,
                    procs,
                }
            })
            .filter(|r| !r.procs.is_empty())
            .collect();
        let s = backfill_schedule(m, &tasks, &reservations);
        prop_assert_eq!(s.len(), tasks.len());
        prop_assert!(validate_no_overlap(&s).is_ok(), "{:?}", validate_no_overlap(&s));
        // No placement intrudes into a reservation window.
        for p in s.placements() {
            for r in &reservations {
                for &q in &r.procs {
                    if p.procs.contains(q) {
                        let disjoint = p.completion() <= r.start + 1e-9 || p.start >= r.end() - 1e-9;
                        prop_assert!(disjoint, "{} collides with a reservation on {q}", p.task);
                    }
                }
            }
        }
        // Ready times are honoured (up to the candidate dedup slack).
        for p in s.placements() {
            prop_assert!(p.start >= tasks[p.task.index()].ready - 1e-9);
        }
    }
}

#[test]
fn ordered_and_greedy_handle_a_thousand_tasks() {
    // Smoke test at realistic scale: n = 1000 unit tasks on 64 procs.
    let mut b = InstanceBuilder::new(64);
    for _ in 0..1000 {
        b.push_sequential(1.0, 1.0).unwrap();
    }
    let inst = b.build().unwrap();
    let tasks: Vec<ListTask> = inst.ids().map(|id| ListTask::new(id, 1, 1.0)).collect();
    for policy in [ListPolicy::Greedy, ListPolicy::Ordered] {
        let s = list_schedule(64, &tasks, policy);
        validate(&inst, &s).unwrap();
        assert_eq!(s.makespan(), (1000f64 / 64.0).ceil());
        assert_eq!(s.placement_of(TaskId(999)).map(|p| p.alloc()), Some(1));
        // The maximal-ties regime at scale: 1000 identical unit tasks
        // produce 64-way simultaneous completion events, and the
        // engines must still agree placement for placement.
        assert_eq!(s, list_schedule_scan(64, &tasks, policy), "{policy:?}");
    }
}
