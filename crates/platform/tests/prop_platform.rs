//! Property tests for the platform substrate: the list engine always
//! emits valid schedules, compaction never hurts, and the validator
//! accepts what the engine builds.

use demt_model::{Instance, InstanceBuilder, TaskId};
use demt_platform::{list_schedule, pull_earlier, validate, Criteria, ListPolicy, ListTask};
use proptest::prelude::*;

/// Random monotonic instance plus a per-task allotment choice.
fn arb_instance_with_allocs() -> impl Strategy<Value = (Instance, Vec<usize>)> {
    (2usize..6, 1usize..12)
        .prop_flat_map(|(m, n)| {
            let tasks = prop::collection::vec((0.5f64..10.0, 0.0f64..1.0, 0.1f64..9.9), n..=n);
            (Just(m), tasks)
        })
        .prop_map(|(m, raw)| {
            let mut b = InstanceBuilder::new(m);
            let mut allocs = Vec::new();
            for (seq, alpha, frac) in raw {
                // Build a monotonic vector via the constant-degree recursion.
                let times = demt_workload::recursive_times_const(seq, m, alpha);
                b.push_times(1.0, times).unwrap();
                allocs.push(1 + (frac * m as f64) as usize % m);
            }
            (b.build().unwrap(), allocs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn list_engine_output_is_always_valid((inst, allocs) in arb_instance_with_allocs()) {
        for policy in [ListPolicy::Greedy, ListPolicy::Ordered] {
            let tasks: Vec<ListTask> = inst
                .ids()
                .map(|id| {
                    let k = allocs[id.index()].min(inst.procs()).max(1);
                    ListTask::new(id, k, inst.task(id).time(k))
                })
                .collect();
            let s = list_schedule(inst.procs(), &tasks, policy);
            prop_assert!(validate(&inst, &s).is_ok(), "{policy:?}: {:?}", validate(&inst, &s));
        }
    }

    #[test]
    fn greedy_never_beats_area_bound((inst, allocs) in arb_instance_with_allocs()) {
        let tasks: Vec<ListTask> = inst
            .ids()
            .map(|id| {
                let k = allocs[id.index()].min(inst.procs()).max(1);
                ListTask::new(id, k, inst.task(id).time(k))
            })
            .collect();
        let s = list_schedule(inst.procs(), &tasks, ListPolicy::Greedy);
        // Makespan is at least total-area / m and at least the longest task.
        let area: f64 = tasks.iter().map(|t| t.alloc as f64 * t.duration).sum();
        let longest = tasks.iter().map(|t| t.duration).fold(0.0, f64::max);
        let lb = (area / inst.procs() as f64).max(longest);
        prop_assert!(s.makespan() >= lb - 1e-9, "makespan {} below bound {lb}", s.makespan());
    }

    #[test]
    fn pull_earlier_preserves_validity_and_improves((inst, allocs) in arb_instance_with_allocs()) {
        let tasks: Vec<ListTask> = inst
            .ids()
            .map(|id| {
                let k = allocs[id.index()].min(inst.procs()).max(1);
                ListTask::new(id, k, inst.task(id).time(k))
            })
            .collect();
        // Build a deliberately loose schedule: everything stacked with gaps.
        let mut loose = demt_platform::Schedule::new(inst.procs());
        let mut t0 = 1.0;
        for t in &tasks {
            loose.push(demt_platform::Placement {
                task: t.id,
                start: t0,
                duration: t.duration,
                procs: (0..t.alloc as u32).collect(),
            });
            t0 += t.duration + 0.5;
        }
        prop_assert!(validate(&inst, &loose).is_ok());
        let tight = pull_earlier(&loose, None);
        prop_assert!(validate(&inst, &tight).is_ok());
        let before = Criteria::evaluate(&inst, &loose);
        let after = Criteria::evaluate(&inst, &tight);
        prop_assert!(after.makespan <= before.makespan + 1e-9);
        prop_assert!(after.weighted_completion <= before.weighted_completion + 1e-9);
        // Idempotence.
        let again = pull_earlier(&tight, None);
        prop_assert_eq!(tight, again);
    }
}

#[test]
fn ordered_and_greedy_handle_a_thousand_tasks() {
    // Smoke test at realistic scale: n = 1000 unit tasks on 64 procs.
    let mut b = InstanceBuilder::new(64);
    for _ in 0..1000 {
        b.push_sequential(1.0, 1.0).unwrap();
    }
    let inst = b.build().unwrap();
    let tasks: Vec<ListTask> = inst.ids().map(|id| ListTask::new(id, 1, 1.0)).collect();
    for policy in [ListPolicy::Greedy, ListPolicy::Ordered] {
        let s = list_schedule(64, &tasks, policy);
        validate(&inst, &s).unwrap();
        assert_eq!(s.makespan(), (1000f64 / 64.0).ceil());
        assert_eq!(s.placement_of(TaskId(999)).map(|p| p.alloc()), Some(1));
    }
}
