//! ProcSet differential property suite.
//!
//! Two layers of evidence that the interval-set placement
//! representation changed *nothing observable*:
//!
//! 1. **Algebra** — every [`ProcSet`] operation against a `BTreeSet`
//!    reference on random id sets: union/subtract/intersect agree
//!    element-wise, `take_k_*` splits are exact partitions, iteration
//!    is sorted, the canonical form (sorted, disjoint, non-adjacent)
//!    survives every operation, and serde round-trips through the
//!    plain id-array wire form byte-for-byte.
//! 2. **Engines** — the ProcSet-backed skyline engines against the
//!    retained `Vec<usize>` bookkeeping references, compared as
//!    serialized JSON **bytes** on tie-heavy grids (equal durations and
//!    ready times force maximal tie-breaking stress): both list
//!    policies, conservative backfilling (against a local pure-Vec scan
//!    reimplementation without the skyline pre-filter), and the EASY
//!    queue front-end.

use demt_model::{ProcSet, TaskId};
use demt_platform::{
    backfill_schedule, list_schedule_scan, try_list_schedule, validate_no_overlap, ListPolicy,
    ListTask, Placement, Reservation, Schedule,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------
// Layer 1: ProcSet algebra vs BTreeSet
// ---------------------------------------------------------------------

/// Random id set in a small universe (tight ids force adjacent-range
/// coalescing; the algebra is id-value agnostic beyond that).
fn arb_ids() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..48, 0..24)
}

/// Canonical-form invariant: sorted, disjoint, non-adjacent, non-empty
/// ranges — the representation every operation must preserve.
fn assert_canonical(s: &ProcSet) {
    for w in s.ranges().windows(2) {
        assert!(
            w[0].1 + 1 < w[1].0,
            "ranges out of order or adjacent: {s:?}"
        );
    }
    for &(lo, hi) in s.ranges() {
        assert!(lo <= hi, "inverted range in {s:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn set_algebra_matches_btreeset(a in arb_ids(), b in arb_ids()) {
        let (sa, sb) = (ProcSet::from_ids(a.iter().copied()), ProcSet::from_ids(b.iter().copied()));
        let (ra, rb): (BTreeSet<u32>, BTreeSet<u32>) = (a.into_iter().collect(), b.into_iter().collect());
        for (got, want) in [
            (sa.union(&sb), ra.union(&rb).copied().collect::<Vec<u32>>()),
            (sa.subtract(&sb), ra.difference(&rb).copied().collect()),
            (sa.intersect(&sb), ra.intersection(&rb).copied().collect()),
        ] {
            assert_canonical(&got);
            prop_assert_eq!(got.to_ids(), want);
        }
        // In-place union agrees with the pure one.
        let mut acc = sa.clone();
        acc.union_with(&sb);
        prop_assert_eq!(acc, sa.union(&sb));
        // Cardinality, membership, ordering.
        prop_assert_eq!(sa.len(), ra.len());
        prop_assert_eq!(sa.iter().collect::<Vec<u32>>(), ra.iter().copied().collect::<Vec<u32>>());
        for q in 0..50u32 {
            prop_assert_eq!(sa.contains(q), ra.contains(&q));
        }
    }

    #[test]
    fn take_k_lowest_is_an_exact_partition(ids in arb_ids(), k in 0usize..30) {
        let full = ProcSet::from_ids(ids.iter().copied());
        let mut rest = full.clone();
        match rest.take_k_lowest(k) {
            None => {
                prop_assert!(k > full.len(), "refused a satisfiable take");
                prop_assert_eq!(rest, full, "failed take must not disturb the set");
            }
            Some(taken) => {
                assert_canonical(&taken);
                assert_canonical(&rest);
                prop_assert_eq!(taken.len(), k);
                prop_assert!(taken.intersect(&rest).is_empty(), "overlapping split");
                prop_assert_eq!(taken.union(&rest), full.clone(), "lossy split");
                // Exactly the k lowest ids.
                let lowest: Vec<u32> = full.iter().take(k).collect();
                prop_assert_eq!(taken.to_ids(), lowest);
            }
        }
    }

    #[test]
    fn take_k_contiguous_is_one_run(ids in arb_ids(), k in 1usize..12) {
        let full = ProcSet::from_ids(ids.iter().copied());
        let mut rest = full.clone();
        match rest.take_k_contiguous(k) {
            None => {
                prop_assert!(
                    full.ranges().iter().all(|&(lo, hi)| (hi - lo + 1) < k as u32),
                    "refused although a wide-enough run exists"
                );
                prop_assert_eq!(rest, full);
            }
            Some(taken) => {
                prop_assert_eq!(taken.ranges().len(), 1, "not contiguous: {:?}", taken);
                prop_assert_eq!(taken.len(), k);
                prop_assert!(taken.intersect(&rest).is_empty());
                prop_assert_eq!(taken.union(&rest), full);
            }
        }
    }

    #[test]
    fn serde_wire_form_is_the_plain_id_array(ids in arb_ids()) {
        let s = ProcSet::from_ids(ids.iter().copied());
        let as_vec: Vec<u32> = s.to_ids();
        let bytes = serde_json::to_string(&s).unwrap();
        prop_assert_eq!(&bytes, &serde_json::to_string(&as_vec).unwrap());
        let back: ProcSet = serde_json::from_str(&bytes).unwrap();
        prop_assert_eq!(back, s);
    }
}

// ---------------------------------------------------------------------
// Layer 2: engine differentials, byte-for-byte
// ---------------------------------------------------------------------

/// Tie-heavy task list: durations from a 3-value menu and ready times
/// from a 2-value menu, so many events coincide exactly and the
/// tie-breaking order inside the engines carries all the weight.
fn arb_tie_grid() -> impl Strategy<Value = (usize, Vec<ListTask>)> {
    (2usize..8, 1usize..20)
        .prop_flat_map(|(m, n)| {
            let tasks = prop::collection::vec((0usize..m, 0usize..3, 0usize..2), n..=n);
            (Just(m), tasks)
        })
        .prop_map(|(m, raw)| {
            let tasks = raw
                .into_iter()
                .enumerate()
                .map(|(i, (alloc, d, r))| {
                    let mut t = ListTask::new(TaskId(i), 1 + alloc % m, [1.0, 2.0, 0.5][d]);
                    t.ready = [0.0, 1.0][r];
                    t
                })
                .collect();
            (m, tasks)
        })
}

fn json(s: &Schedule) -> String {
    serde_json::to_string(s).unwrap()
}

/// Pure-Vec conservative backfilling: the `backfill_schedule` algorithm
/// with the skyline pre-filter removed and `Vec<u32>` bookkeeping —
/// the documented "sound filter" claim means placements must match the
/// engine exactly.
fn backfill_reference(m: usize, tasks: &[ListTask], reservations: &[Reservation]) -> Schedule {
    let mut busy: Vec<Vec<(f64, f64)>> = vec![Vec::new(); m];
    let free_during = |busy: &[Vec<(f64, f64)>], q: usize, s: f64, e: f64| {
        busy[q]
            .iter()
            .all(|&(bs, be)| e <= bs + 1e-12 || s >= be - 1e-12)
    };
    for r in reservations {
        for &q in &r.procs {
            busy[q as usize].push((r.start, r.end()));
        }
    }
    let mut schedule = Schedule::new(m);
    for t in tasks {
        let mut candidates: Vec<f64> = vec![t.ready];
        for p in &busy {
            for &(_, be) in p {
                if be > t.ready - 1e-12 {
                    candidates.push(be);
                }
            }
        }
        candidates.sort_by(|a, b| a.total_cmp(b));
        candidates.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        for &s in &candidates {
            let e = s + t.duration;
            let free: Vec<u32> = (0..m as u32)
                .filter(|&q| free_during(&busy, q as usize, s, e))
                .collect();
            if free.len() >= t.alloc {
                let procs: Vec<u32> = free[..t.alloc].to_vec();
                for &q in &procs {
                    let pos = busy[q as usize].partition_point(|&(bs, _)| bs < s);
                    busy[q as usize].insert(pos, (s, e));
                }
                schedule.push(Placement {
                    task: t.id,
                    start: s,
                    duration: t.duration,
                    procs: ProcSet::from_ids(procs),
                });
                break;
            }
        }
    }
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn list_engines_agree_byte_for_byte((m, tasks) in arb_tie_grid()) {
        for policy in [ListPolicy::Greedy, ListPolicy::Ordered] {
            let skyline = try_list_schedule(m, &tasks, policy).unwrap();
            let scan = list_schedule_scan(m, &tasks, policy);
            prop_assert_eq!(json(&skyline), json(&scan), "{:?} diverged", policy);
            prop_assert!(validate_no_overlap(&skyline).is_ok());
        }
    }

    #[test]
    fn backfill_engine_matches_the_vec_reference(
        (m, tasks) in arb_tie_grid(),
        window in (0usize..3, 1usize..3),
    ) {
        // One deterministic maintenance window derived from the grid,
        // plus the reservation-free case when it would be degenerate.
        let reservations = if m > 1 {
            vec![Reservation {
                start: window.0 as f64,
                duration: window.1 as f64,
                procs: vec![0, (m as u32) - 1],
            }]
        } else {
            Vec::new()
        };
        let engine = backfill_schedule(m, &tasks, &reservations);
        let reference = backfill_reference(m, &tasks, &reservations);
        prop_assert_eq!(json(&engine), json(&reference));
        prop_assert!(validate_no_overlap(&engine).is_ok());
    }
}

// ---------------------------------------------------------------------
// EASY queue differential (rigid front-end jobs)
// ---------------------------------------------------------------------

/// Tie-heavy rigid job stream for the EASY queue: small width/runtime
/// menus and coinciding releases.
fn arb_job_stream() -> impl Strategy<Value = (usize, Vec<demt_frontend::SubmittedJob>)> {
    (2usize..8, 1usize..14)
        .prop_flat_map(|(m, n)| {
            let jobs = prop::collection::vec((0usize..m, 0usize..3, 0usize..3), n..=n);
            (Just(m), jobs)
        })
        .prop_map(|(m, raw)| {
            let jobs = raw
                .into_iter()
                .enumerate()
                .map(|(i, (w, d, r))| {
                    let width = 1 + w % m;
                    let time = [1.0, 2.0, 3.0][d];
                    let task =
                        demt_model::MoldableTask::rigid(TaskId(i), 1.0, width, time, m).unwrap();
                    demt_frontend::SubmittedJob {
                        task,
                        release: [0.0, 0.5, 2.0][r],
                        rigid_procs: width,
                    }
                })
                .collect();
            (m, jobs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn easy_queue_engines_agree_byte_for_byte((m, jobs) in arb_job_stream()) {
        use demt_frontend::{queue_schedule, queue_schedule_scan, QueuePolicy};
        for policy in [QueuePolicy::Fcfs, QueuePolicy::EasyBackfill] {
            let skyline = queue_schedule(m, &jobs, policy);
            let scan = queue_schedule_scan(m, &jobs, policy, demt_frontend::QueueOrder::Arrival);
            prop_assert_eq!(json(&skyline), json(&scan), "{:?} diverged", policy);
            prop_assert!(validate_no_overlap(&skyline).is_ok());
        }
    }
}
