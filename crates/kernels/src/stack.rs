//! Stacking ("merging") of small sequential tasks (paper §3.2).
//!
//! Tasks that run in at most half the batch length on a single processor
//! are chained back-to-back on one processor so that the knapsack sees a
//! single allocation-1 item carrying the *sum* of their weights. The
//! paper merges "by decreasing weight order, in order to have as much
//! weight as possible" — implemented here as first-fit decreasing-weight
//! packing into chains bounded by the batch length.

/// A candidate for stacking: sequential running time and weight, plus an
/// opaque handle the caller uses to map members back to tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackItem<H> {
    /// Caller's handle (e.g. a task id).
    pub handle: H,
    /// Sequential processing time of the task.
    pub len: f64,
    /// Task weight.
    pub weight: f64,
}

/// A chain of stacked tasks occupying one processor for `total_len`.
#[derive(Debug, Clone, PartialEq)]
pub struct Chain<H> {
    /// Members in execution order (heaviest first).
    pub members: Vec<StackItem<H>>,
    /// Sum of member lengths; never exceeds the chain capacity.
    pub total_len: f64,
    /// Sum of member weights (the knapsack value of the chain).
    pub total_weight: f64,
}

/// Packs items into chains of length at most `max_len` using first-fit
/// on items sorted by decreasing weight (ties broken by decreasing
/// length so heavy-and-long items claim space first).
///
/// Every item must individually fit (`len ≤ max_len`); the paper
/// guarantees this by only merging tasks with `pᵢ(1) ≤ t_j / 2 ≤ t_j`.
pub fn pack_chains<H: Copy>(items: &[StackItem<H>], max_len: f64) -> Vec<Chain<H>> {
    assert!(max_len > 0.0 && max_len.is_finite());
    for it in items {
        assert!(
            it.len > 0.0 && it.len <= max_len * (1.0 + 1e-12),
            "stack item longer than the chain capacity"
        );
    }
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        items[b]
            .weight
            .total_cmp(&items[a].weight)
            .then(items[b].len.total_cmp(&items[a].len))
    });
    let mut chains: Vec<Chain<H>> = Vec::new();
    for idx in order {
        let it = items[idx];
        // First-fit: the first chain with room takes the item.
        match chains
            .iter_mut()
            .find(|c| c.total_len + it.len <= max_len * (1.0 + 1e-12))
        {
            Some(c) => {
                c.members.push(it);
                c.total_len += it.len;
                c.total_weight += it.weight;
            }
            None => chains.push(Chain {
                members: vec![it],
                total_len: it.len,
                total_weight: it.weight,
            }),
        }
    }
    chains
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(handle: usize, len: f64, weight: f64) -> StackItem<usize> {
        StackItem {
            handle,
            len,
            weight,
        }
    }

    #[test]
    fn empty_input_gives_no_chain() {
        assert!(pack_chains::<usize>(&[], 4.0).is_empty());
    }

    #[test]
    fn single_chain_when_everything_fits() {
        let chains = pack_chains(&[item(0, 1.0, 1.0), item(1, 2.0, 2.0)], 4.0);
        assert_eq!(chains.len(), 1);
        assert!((chains[0].total_len - 3.0).abs() < 1e-12);
        assert!((chains[0].total_weight - 3.0).abs() < 1e-12);
    }

    #[test]
    fn heaviest_items_are_packed_first() {
        // Capacity 3: the weight-5 item (len 3) fills chain 0 alone; the
        // two weight-1 items go to a second chain.
        let chains = pack_chains(
            &[item(0, 1.0, 1.0), item(1, 3.0, 5.0), item(2, 1.0, 1.0)],
            3.0,
        );
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].members[0].handle, 1);
        assert!((chains[0].total_weight - 5.0).abs() < 1e-12);
        assert_eq!(chains[1].members.len(), 2);
    }

    #[test]
    fn chains_never_exceed_capacity_and_lose_no_item() {
        let items: Vec<_> = (0..50)
            .map(|i| item(i, 0.3 + (i % 7) as f64 * 0.35, (i % 5) as f64 + 1.0))
            .collect();
        let cap = 2.5;
        let chains = pack_chains(&items, cap);
        let mut seen = vec![false; items.len()];
        for c in &chains {
            assert!(c.total_len <= cap + 1e-9);
            let len: f64 = c.members.iter().map(|m| m.len).sum();
            let w: f64 = c.members.iter().map(|m| m.weight).sum();
            assert!((len - c.total_len).abs() < 1e-9);
            assert!((w - c.total_weight).abs() < 1e-9);
            for m in &c.members {
                assert!(!seen[m.handle], "item packed twice");
                seen[m.handle] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "item dropped");
    }

    #[test]
    fn chain_weight_is_decreasing_within_members() {
        let chains = pack_chains(
            &[item(0, 1.0, 2.0), item(1, 1.0, 9.0), item(2, 1.0, 5.0)],
            3.0,
        );
        assert_eq!(chains.len(), 1);
        let ws: Vec<f64> = chains[0].members.iter().map(|m| m.weight).collect();
        assert_eq!(ws, vec![9.0, 5.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "longer than the chain capacity")]
    fn oversized_item_is_rejected() {
        let _ = pack_chains(&[item(0, 5.0, 1.0)], 4.0);
    }
}
