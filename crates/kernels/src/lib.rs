//! # demt-kernels — combinatorial kernels
//!
//! Small, heavily-tested building blocks shared by the DEMT algorithm
//! (`demt-core`) and the dual-approximation substrate (`demt-dual`):
//!
//! * [`max_weight_knapsack`] — the paper's §3.2 batch-selection DP,
//!   `O(mn)` with exact set reconstruction;
//! * [`min_area_partition`] — the two-shelf assignment knapsack of the
//!   dual approximation;
//! * [`pack_chains`] — merging of small sequential tasks by decreasing
//!   weight (the "stacking" step of §3.2);
//! * [`bisect_threshold`] — monotone bisection used by the dual
//!   approximation's binary search on the target makespan.
//!
//! A `proptest` suite (`tests/` of this crate) cross-checks the DPs
//! against brute force on exhaustive small instances.

#![warn(missing_docs)]

mod bisect;
mod knapsack;
mod stack;

pub use bisect::{bisect_threshold, Threshold};
pub use knapsack::{
    max_weight_knapsack, min_area_partition, ShelfChoice, ShelfItem, ShelfPartition, WeightItem,
    WeightSelection,
};
pub use stack::{pack_chains, Chain, StackItem};
