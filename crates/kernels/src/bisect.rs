//! Bisection over a monotone real predicate.
//!
//! The dual-approximation substrate binary-searches the smallest target
//! makespan λ accepted by a feasibility predicate. The predicate is
//! monotone (feasible at λ ⇒ feasible at any λ' ≥ λ), so bisection to a
//! relative tolerance yields both the smallest accepted value (an upper
//! anchor) and the largest rejected one (a certified lower bound).

/// Outcome of [`bisect_threshold`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Threshold {
    /// Largest probed value the predicate rejected — for the dual
    /// approximation this certifies a lower bound on the optimum.
    pub rejected: f64,
    /// Smallest probed value the predicate accepted.
    pub accepted: f64,
}

/// Finds the transition point of a monotone predicate on `[lo, hi]` to
/// relative precision `rel_eps`.
///
/// Preconditions (checked): `0 < lo ≤ hi`, the predicate accepts `hi`.
/// If it already accepts `lo`, the result is `{rejected: lo·(1-ε),
/// accepted: lo}` — the caller's initial lower anchor was tight.
pub fn bisect_threshold(
    lo: f64,
    hi: f64,
    rel_eps: f64,
    mut feasible: impl FnMut(f64) -> bool,
) -> Threshold {
    assert!(
        lo.is_finite() && hi.is_finite() && lo > 0.0 && lo <= hi,
        "invalid bracket"
    );
    assert!(rel_eps > 0.0 && rel_eps < 1.0, "invalid tolerance");
    assert!(feasible(hi), "upper anchor must be feasible");
    if feasible(lo) {
        return Threshold {
            rejected: lo * (1.0 - rel_eps),
            accepted: lo,
        };
    }
    let mut bad = lo;
    let mut good = hi;
    while good - bad > rel_eps * bad {
        let mid = 0.5 * (bad + good);
        if feasible(mid) {
            good = mid;
        } else {
            bad = mid;
        }
    }
    Threshold {
        rejected: bad,
        accepted: good,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_a_known_threshold() {
        let t = bisect_threshold(1.0, 100.0, 1e-9, |x| x >= 37.5);
        assert!(t.rejected < 37.5 && t.accepted >= 37.5);
        assert!((t.accepted - 37.5) < 1e-6);
        assert!((37.5 - t.rejected) < 1e-6);
    }

    #[test]
    fn tight_lower_anchor_short_circuits() {
        let mut calls = 0;
        let t = bisect_threshold(5.0, 10.0, 1e-6, |_| {
            calls += 1;
            true
        });
        assert_eq!(t.accepted, 5.0);
        assert!(t.rejected < 5.0);
        assert_eq!(calls, 2, "only the two anchors are probed");
    }

    #[test]
    fn respects_relative_tolerance() {
        let t = bisect_threshold(1.0, 1000.0, 1e-3, |x| x >= 500.0);
        assert!(t.accepted - t.rejected <= 1e-3 * t.rejected * 1.01);
        assert!(t.rejected < 500.0 && t.accepted >= 500.0);
    }

    #[test]
    #[should_panic(expected = "upper anchor must be feasible")]
    fn rejects_infeasible_bracket() {
        let _ = bisect_threshold(1.0, 2.0, 1e-6, |_| false);
    }

    #[test]
    #[should_panic(expected = "invalid bracket")]
    fn rejects_inverted_bracket() {
        let _ = bisect_threshold(3.0, 2.0, 1e-6, |_| true);
    }
}
