//! Knapsack dynamic programs over processor capacity.
//!
//! Two DPs are needed by the paper:
//!
//! * [`max_weight_knapsack`] — the batch-content selection of §3.2:
//!   maximize the summed weight of selected items under a processor
//!   budget, `W(i,j) = max(W(i-1,j), W(i-1,j-allotᵢ) + wᵢ)`, complexity
//!   `O(mn)` exactly as the paper states;
//! * [`min_area_partition`] — the shelf-partition step of the
//!   dual-approximation substrate [7]/[17]: every item must go to shelf 1
//!   or shelf 2 (when it has a shelf-2 option), shelf 1 has a processor
//!   budget, and the total *area* is minimized.

/// One candidate item for [`max_weight_knapsack`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightItem {
    /// Processor cost if selected (the paper's `allotᵢ`).
    pub procs: usize,
    /// Value collected if selected (the paper's `wᵢ`).
    pub weight: f64,
}

/// Solution of [`max_weight_knapsack`].
#[derive(Debug, Clone, PartialEq)]
pub struct WeightSelection {
    /// Total selected weight (the largest `W(n, ·)`).
    pub total_weight: f64,
    /// Total processors used by the selection.
    pub procs_used: usize,
    /// `selected[i]` — whether item `i` is in the knapsack.
    pub selected: Vec<bool>,
}

/// 0/1 knapsack maximizing weight under a processor capacity, with exact
/// reconstruction of the chosen set. `O(n·capacity)` time and space (one
/// decision bit per DP cell).
///
/// Items with `procs == 0` are rejected by assertion: a zero-cost item
/// is always taken and callers should not emit one (the paper's
/// allotments are ≥ 1).
///
/// ```
/// use demt_kernels::{max_weight_knapsack, WeightItem};
/// let items = [
///     WeightItem { procs: 5, weight: 10.0 },
///     WeightItem { procs: 3, weight: 5.5 },
///     WeightItem { procs: 3, weight: 5.5 },
/// ];
/// let sel = max_weight_knapsack(&items, 6);
/// assert_eq!(sel.selected, vec![false, true, true]); // 11.0 beats 10.0
/// assert_eq!(sel.procs_used, 6);
/// ```
pub fn max_weight_knapsack(items: &[WeightItem], capacity: usize) -> WeightSelection {
    let n = items.len();
    for it in items {
        assert!(
            it.procs >= 1,
            "knapsack items must cost at least one processor"
        );
        assert!(
            it.weight.is_finite() && it.weight >= 0.0,
            "weights must be finite and ≥ 0"
        );
    }
    let width = capacity + 1;
    // Rolling value row + full decision matrix for reconstruction.
    let mut value = vec![0.0_f64; width];
    let mut take = vec![false; n * width];
    for (i, it) in items.iter().enumerate() {
        if it.procs > capacity {
            continue;
        }
        // Descending capacity so each item is used at most once.
        for j in (it.procs..width).rev() {
            let candidate = value[j - it.procs] + it.weight;
            if candidate > value[j] {
                value[j] = candidate;
                take[i * width + j] = true;
            }
        }
    }
    // The largest W(n, ·) sits at full capacity since values are ≥ 0 and
    // the row is non-decreasing in j.
    let mut j = capacity;
    let total_weight = value[j];
    let mut selected = vec![false; n];
    for i in (0..n).rev() {
        if take[i * width + j] {
            selected[i] = true;
            j -= items[i].procs;
        }
    }
    let procs_used = items
        .iter()
        .zip(&selected)
        .filter(|(_, &s)| s)
        .map(|(it, _)| it.procs)
        .sum();
    WeightSelection {
        total_weight,
        procs_used,
        selected,
    }
}

/// One item of the shelf partition: the shelf-1 option is mandatory to
/// describe; the shelf-2 option may be absent (task too long for the
/// half-length shelf).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShelfItem {
    /// Processors used if placed on shelf 1.
    pub procs_shelf1: usize,
    /// Area (procs × time) if placed on shelf 1.
    pub area_shelf1: f64,
    /// Shelf-2 option: `(procs, area)` if the task fits the half shelf.
    pub shelf2: Option<(usize, f64)>,
}

/// Which shelf an item was assigned to by [`min_area_partition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShelfChoice {
    /// The long shelf (length λ).
    Shelf1,
    /// The short shelf (length λ/2).
    Shelf2,
}

/// Solution of [`min_area_partition`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShelfPartition {
    /// Total area over both shelves.
    pub total_area: f64,
    /// Processors used on shelf 1.
    pub procs_shelf1: usize,
    /// Processors used on shelf 2.
    pub procs_shelf2: usize,
    /// Assignment per item.
    pub choice: Vec<ShelfChoice>,
}

/// Assigns every item to shelf 1 or shelf 2, minimizing total area
/// subject to the shelf-1 processor budget. Items without a shelf-2
/// option are forced onto shelf 1; if their combined cost already
/// exceeds the budget the partition is infeasible and `None` is
/// returned. Shelf 2 is *not* capacity-constrained here — the caller
/// (dual approximation) repairs or rejects overflow separately, as in
/// the original algorithm's transformation phase.
///
/// `O(n·capacity)` time and space.
pub fn min_area_partition(items: &[ShelfItem], capacity: usize) -> Option<ShelfPartition> {
    let n = items.len();
    // Pre-commit forced items.
    let forced: usize = items
        .iter()
        .filter(|it| it.shelf2.is_none())
        .map(|it| it.procs_shelf1)
        .sum();
    if forced > capacity {
        return None;
    }
    let free_cap = capacity - forced;
    let width = free_cap + 1;
    // DP over optional items only: value[j] = min extra area with j
    // shelf-1 processors spent on optional items; baseline is everyone
    // on shelf 2.
    let optional: Vec<(usize, &ShelfItem)> = items
        .iter()
        .enumerate()
        .filter(|(_, it)| it.shelf2.is_some())
        .collect();
    let mut value = vec![0.0_f64; width];
    let mut take = vec![false; optional.len() * width];
    let mut base_area: f64 = items
        .iter()
        .map(|it| it.shelf2.map(|(_, a)| a).unwrap_or(it.area_shelf1))
        .sum();
    for (oi, &(_, it)) in optional.iter().enumerate() {
        // demt-lint: allow(P1, optional was filtered to items with shelf2.is_some())
        let (_, a2) = it.shelf2.expect("optional items have a shelf-2 option");
        let delta = it.area_shelf1 - a2; // extra area if moved to shelf 1
        if it.procs_shelf1 > free_cap {
            continue;
        }
        for j in (it.procs_shelf1..width).rev() {
            let candidate = value[j - it.procs_shelf1] + delta;
            if candidate < value[j] {
                value[j] = candidate;
                take[oi * width + j] = true;
            }
        }
    }
    // Pick the capacity column with the smallest total area; ties prefer
    // fewer shelf-1 processors (smaller j) to leave room for repair.
    let mut best_j = 0usize;
    for j in 1..width {
        if value[j] < value[best_j] - 1e-15 {
            best_j = j;
        }
    }
    let mut choice = vec![ShelfChoice::Shelf1; n];
    for (i, it) in items.iter().enumerate() {
        if it.shelf2.is_some() {
            choice[i] = ShelfChoice::Shelf2;
        }
    }
    let mut j = best_j;
    for oi in (0..optional.len()).rev() {
        if take[oi * width + j] {
            let (orig, it) = optional[oi];
            choice[orig] = ShelfChoice::Shelf1;
            j -= it.procs_shelf1;
        }
    }
    base_area += value[best_j];
    let mut procs_shelf1 = 0usize;
    let mut procs_shelf2 = 0usize;
    for (i, it) in items.iter().enumerate() {
        match choice[i] {
            ShelfChoice::Shelf1 => procs_shelf1 += it.procs_shelf1,
            // demt-lint: allow(P1, Shelf2 is only ever chosen for items carrying a shelf-2 option)
            ShelfChoice::Shelf2 => procs_shelf2 += it.shelf2.expect("choice implies option").0,
        }
    }
    debug_assert!(procs_shelf1 <= capacity);
    Some(ShelfPartition {
        total_area: base_area,
        procs_shelf1,
        procs_shelf2,
        choice,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_max_weight(items: &[WeightItem], capacity: usize) -> f64 {
        let n = items.len();
        let mut best = 0.0_f64;
        for mask in 0u32..(1 << n) {
            let mut procs = 0usize;
            let mut w = 0.0;
            for (i, it) in items.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    procs += it.procs;
                    w += it.weight;
                }
            }
            if procs <= capacity && w > best {
                best = w;
            }
        }
        best
    }

    #[test]
    fn knapsack_trivial_cases() {
        let empty = max_weight_knapsack(&[], 10);
        assert_eq!(empty.total_weight, 0.0);
        assert_eq!(empty.procs_used, 0);

        let one = max_weight_knapsack(
            &[WeightItem {
                procs: 3,
                weight: 5.0,
            }],
            2,
        );
        assert_eq!(
            one.total_weight, 0.0,
            "item larger than capacity is dropped"
        );
        assert_eq!(one.selected, vec![false]);
    }

    #[test]
    fn knapsack_matches_brute_force_on_fixed_instances() {
        let items = [
            WeightItem {
                procs: 2,
                weight: 3.0,
            },
            WeightItem {
                procs: 3,
                weight: 4.0,
            },
            WeightItem {
                procs: 4,
                weight: 5.0,
            },
            WeightItem {
                procs: 5,
                weight: 6.0,
            },
        ];
        for cap in 0..=14 {
            let dp = max_weight_knapsack(&items, cap);
            let bf = brute_force_max_weight(&items, cap);
            assert!(
                (dp.total_weight - bf).abs() < 1e-9,
                "cap {cap}: dp {} bf {bf}",
                dp.total_weight
            );
            // Reconstruction must be consistent.
            let w: f64 = items
                .iter()
                .zip(&dp.selected)
                .filter(|(_, &s)| s)
                .map(|(i, _)| i.weight)
                .sum();
            let p: usize = items
                .iter()
                .zip(&dp.selected)
                .filter(|(_, &s)| s)
                .map(|(i, _)| i.procs)
                .sum();
            assert!((w - dp.total_weight).abs() < 1e-9);
            assert_eq!(p, dp.procs_used);
            assert!(p <= cap);
        }
    }

    #[test]
    fn knapsack_prefers_weight_over_count() {
        let items = [
            WeightItem {
                procs: 5,
                weight: 10.0,
            },
            WeightItem {
                procs: 3,
                weight: 5.5,
            },
            WeightItem {
                procs: 3,
                weight: 5.5,
            },
        ];
        // Capacity 6: the two light items together (11.0) beat the big one.
        let sel = max_weight_knapsack(&items, 6);
        assert_eq!(sel.selected, vec![false, true, true]);
        // Capacity 5: only the big item fits for 10.0 > 5.5.
        let sel = max_weight_knapsack(&items, 5);
        assert_eq!(sel.selected, vec![true, false, false]);
    }

    #[test]
    fn partition_forces_items_without_shelf2() {
        let items = [
            ShelfItem {
                procs_shelf1: 4,
                area_shelf1: 8.0,
                shelf2: None,
            },
            ShelfItem {
                procs_shelf1: 2,
                area_shelf1: 6.0,
                shelf2: Some((4, 8.0)),
            },
        ];
        let p = min_area_partition(&items, 5).expect("feasible");
        assert_eq!(p.choice[0], ShelfChoice::Shelf1);
        // Moving item 1 to shelf 1 costs area 6 < 8 but capacity only
        // leaves 1 processor — must stay on shelf 2.
        assert_eq!(p.choice[1], ShelfChoice::Shelf2);
        assert!((p.total_area - 16.0).abs() < 1e-9);
        assert_eq!(p.procs_shelf1, 4);
        assert_eq!(p.procs_shelf2, 4);
    }

    #[test]
    fn partition_moves_items_when_it_saves_area() {
        let items = [
            ShelfItem {
                procs_shelf1: 2,
                area_shelf1: 4.0,
                shelf2: Some((5, 10.0)),
            },
            ShelfItem {
                procs_shelf1: 2,
                area_shelf1: 9.0,
                shelf2: Some((3, 6.0)),
            },
        ];
        let p = min_area_partition(&items, 4).expect("feasible");
        assert_eq!(p.choice[0], ShelfChoice::Shelf1, "saves 6 area units");
        assert_eq!(p.choice[1], ShelfChoice::Shelf2, "shelf 1 would waste 3");
        assert!((p.total_area - 10.0).abs() < 1e-9);
    }

    #[test]
    fn partition_infeasible_when_forced_items_overflow() {
        let items = [
            ShelfItem {
                procs_shelf1: 4,
                area_shelf1: 1.0,
                shelf2: None,
            },
            ShelfItem {
                procs_shelf1: 3,
                area_shelf1: 1.0,
                shelf2: None,
            },
        ];
        assert_eq!(min_area_partition(&items, 6), None);
    }

    #[test]
    fn partition_of_empty_input() {
        let p = min_area_partition(&[], 8).unwrap();
        assert_eq!(p.total_area, 0.0);
        assert_eq!(p.procs_shelf1 + p.procs_shelf2, 0);
    }
}
