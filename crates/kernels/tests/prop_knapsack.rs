//! Property tests: the knapsack DPs agree with brute force on all small
//! instances, and structural invariants hold on every output.

use demt_kernels::{
    max_weight_knapsack, min_area_partition, pack_chains, ShelfChoice, ShelfItem, StackItem,
    WeightItem,
};
use proptest::prelude::*;

fn weight_items() -> impl Strategy<Value = Vec<WeightItem>> {
    prop::collection::vec(
        (1usize..8, 0.0f64..20.0).prop_map(|(procs, weight)| WeightItem { procs, weight }),
        0..10,
    )
}

fn brute_force_weight(items: &[WeightItem], cap: usize) -> f64 {
    let mut best = 0.0f64;
    for mask in 0u32..(1 << items.len()) {
        let mut procs = 0;
        let mut w = 0.0;
        for (i, it) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                procs += it.procs;
                w += it.weight;
            }
        }
        if procs <= cap && w > best {
            best = w;
        }
    }
    best
}

proptest! {
    #[test]
    fn knapsack_is_optimal(items in weight_items(), cap in 0usize..20) {
        let dp = max_weight_knapsack(&items, cap);
        let bf = brute_force_weight(&items, cap);
        prop_assert!((dp.total_weight - bf).abs() < 1e-9,
            "dp {} vs brute force {bf}", dp.total_weight);
    }

    #[test]
    fn knapsack_selection_is_consistent(items in weight_items(), cap in 0usize..20) {
        let dp = max_weight_knapsack(&items, cap);
        let procs: usize = items.iter().zip(&dp.selected).filter(|(_, &s)| s).map(|(i, _)| i.procs).sum();
        let weight: f64 = items.iter().zip(&dp.selected).filter(|(_, &s)| s).map(|(i, _)| i.weight).sum();
        prop_assert!(procs <= cap);
        prop_assert_eq!(procs, dp.procs_used);
        prop_assert!((weight - dp.total_weight).abs() < 1e-9);
    }
}

fn shelf_items() -> impl Strategy<Value = Vec<ShelfItem>> {
    prop::collection::vec(
        (
            1usize..6,
            0.5f64..20.0,
            prop::option::of((1usize..6, 0.5f64..20.0)),
        )
            .prop_map(|(p1, a1, s2)| ShelfItem {
                procs_shelf1: p1,
                area_shelf1: a1,
                shelf2: s2,
            }),
        0..9,
    )
}

fn brute_force_partition(items: &[ShelfItem], cap: usize) -> Option<f64> {
    let n = items.len();
    let mut best: Option<f64> = None;
    'mask: for mask in 0u32..(1 << n) {
        // bit set = shelf 1.
        let mut procs1 = 0;
        let mut area = 0.0;
        for (i, it) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                procs1 += it.procs_shelf1;
                area += it.area_shelf1;
            } else {
                match it.shelf2 {
                    Some((_, a2)) => area += a2,
                    None => continue 'mask, // shelf 2 impossible
                }
            }
        }
        if procs1 <= cap && best.is_none_or(|b| area < b) {
            best = Some(area);
        }
    }
    best
}

proptest! {
    #[test]
    fn shelf_partition_is_optimal(items in shelf_items(), cap in 0usize..16) {
        let dp = min_area_partition(&items, cap);
        let bf = brute_force_partition(&items, cap);
        match (dp, bf) {
            (None, None) => {}
            (Some(p), Some(b)) => prop_assert!((p.total_area - b).abs() < 1e-9,
                "dp {} vs brute force {b}", p.total_area),
            (dp, bf) => prop_assert!(false, "feasibility mismatch: dp {dp:?} bf {bf:?}"),
        }
    }

    #[test]
    fn shelf_partition_respects_capacity_and_choices(items in shelf_items(), cap in 0usize..16) {
        if let Some(p) = min_area_partition(&items, cap) {
            let mut procs1 = 0;
            for (it, &c) in items.iter().zip(&p.choice) {
                match c {
                    ShelfChoice::Shelf1 => procs1 += it.procs_shelf1,
                    ShelfChoice::Shelf2 => prop_assert!(it.shelf2.is_some()),
                }
            }
            prop_assert!(procs1 <= cap);
            prop_assert_eq!(procs1, p.procs_shelf1);
        }
    }
}

proptest! {
    #[test]
    fn chains_partition_the_items(lens in prop::collection::vec(0.1f64..1.0, 0..30), cap in 1.0f64..4.0) {
        let items: Vec<StackItem<usize>> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| StackItem { handle: i, len: l, weight: (i % 4) as f64 + 0.5 })
            .collect();
        let chains = pack_chains(&items, cap);
        let mut seen = vec![false; items.len()];
        for c in &chains {
            prop_assert!(c.total_len <= cap + 1e-9);
            for m in &c.members {
                prop_assert!(!seen[m.handle]);
                seen[m.handle] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // First-fit decreasing never opens more chains than items.
        prop_assert!(chains.len() <= items.len());
    }
}
