//! Why moldability matters (the paper's §2.1 pitch): the same jobs
//! scheduled (a) rigidly at user-requested sizes, (b) moldably by DEMT.
//!
//! Rigid requests are emulated with the model crate's rigid-task
//! builder; DEMT then schedules the *moldable* originals and wins on
//! both criteria by choosing allotments itself.
//!
//! ```text
//! cargo run --release --example moldability_matters
//! ```

use demt::model::MoldableTask;
use demt::prelude::*;
use rand::Rng;

fn main() {
    let m = 32;
    let n = 48;
    let moldable = generate(WorkloadKind::Cirne, n, m, 77);

    // Users traditionally over-request: a rigid size drawn near the
    // task's speed-up knee, rounded up to a power of two (classic
    // submission habit).
    let mut rng = demt::distr::seeded_rng(1234);
    let mut b = InstanceBuilder::new(m);
    for t in moldable.tasks() {
        // "Knee": smallest k achieving 80% of the maximal speed-up.
        let best = t.seq_time() / t.min_time();
        let knee = (1..=m)
            .find(|&k| t.seq_time() / t.time(k) >= 0.8 * best)
            .unwrap_or(1);
        let req = (knee.next_power_of_two()).min(m).max(1);
        let jitter = if rng.random::<f64>() < 0.3 { 2 } else { 1 };
        let req = (req * jitter).min(m);
        b.push_task(MoldableTask::rigid(t.id(), t.weight(), req, t.time(req), m).unwrap())
            .unwrap();
    }
    let rigid = b.build().unwrap();

    let rigid_result = demt_schedule(&rigid, &DemtConfig::default());
    assert_valid(&rigid, &rigid_result.schedule);
    let moldable_result = demt_schedule(&moldable, &DemtConfig::default());
    assert_valid(&moldable, &moldable_result.schedule);

    // Both instances have identical work semantics at the rigid size, so
    // criteria are directly comparable.
    println!(
        "{} jobs on {} processors — rigid requests vs moldable scheduling\n",
        n, m
    );
    println!(
        "{:<22} {:>10} {:>14} {:>12}",
        "", "Cmax", "Σ wᵢCᵢ", "utilization"
    );
    let rc = &rigid_result.criteria;
    let mc = &moldable_result.criteria;
    println!(
        "{:<22} {:>10.2} {:>14.1} {:>11.0}%",
        "rigid (user sizes)",
        rc.makespan,
        rc.weighted_completion,
        rc.utilization * 100.0
    );
    println!(
        "{:<22} {:>10.2} {:>14.1} {:>11.0}%",
        "moldable (DEMT)",
        mc.makespan,
        mc.weighted_completion,
        mc.utilization * 100.0
    );
    println!(
        "\nmoldability gains: Cmax ×{:.2}, Σ wᵢCᵢ ×{:.2}",
        rc.makespan / mc.makespan,
        rc.weighted_completion / mc.weighted_completion
    );
    println!(
        "\n(the paper's §2.1 argument: most parallel applications are\n\
         intrinsically moldable, and handing the allotment choice to the\n\
         scheduler recovers the idle areas rigid requests leave behind)"
    );
}
