//! A day in the life of a cluster front-end (the paper's Fig. 1 setup
//! and its §5 production scenario): jobs arrive over time at the
//! submission queue, and the on-line batch wrapper (§2.2) schedules each
//! batch with DEMT.
//!
//! Compares the on-line result with the clairvoyant off-line schedule to
//! illustrate the `2ρ` batch argument empirically.
//!
//! ```text
//! cargo run --release --example cluster_day
//! ```

use demt::prelude::*;
use rand::Rng;

fn main() {
    let m = 32;
    let n = 60;

    // Mixed daytime workload: mostly small interactive jobs, a few large
    // simulations (the paper's mixed model), arriving as a Poisson-ish
    // stream over the morning.
    let inst = generate(WorkloadKind::Mixed, n, m, 2024);
    let mut rng = demt::distr::seeded_rng(99);
    let mut arrival = 0.0_f64;
    let jobs: Vec<OnlineJob> = inst
        .tasks()
        .iter()
        .map(|t| {
            arrival += rng.random_range(0.0..0.6);
            OnlineJob {
                task: t.clone(),
                release: arrival,
            }
        })
        .collect();
    let releases: Vec<f64> = jobs.iter().map(|j| j.release).collect();
    println!(
        "{} jobs arriving over [0, {:.1}] on {} processors",
        n,
        releases.last().unwrap(),
        m
    );

    // On-line: batches of everything released so far, each scheduled by
    // the registry's DEMT entry ("an arriving job is scheduled in the
    // next starting batch").
    let online = online_batch_schedule(m, &jobs, registry().by_name("demt").expect("registered"));
    validate_with_releases(&inst, &online.schedule, Some(&releases)).expect("feasible");

    println!("\non-line batches:");
    for (i, b) in online.batches.iter().enumerate() {
        println!(
            "  batch {:>2}: start {:>7.2}  length {:>7.2}  jobs {:>3}",
            i,
            b.start,
            b.length,
            b.jobs.len()
        );
    }

    // Clairvoyant comparison: all jobs known at time 0.
    let offline = demt_schedule(&inst, &DemtConfig::default());
    let on_crit = Criteria::evaluate(&inst, &online.schedule);
    let off_crit = &offline.criteria;
    let last_release = releases.iter().cloned().fold(0.0, f64::max);

    println!("\n{:<28} {:>10} {:>12}", "", "Cmax", "Σ wᵢCᵢ");
    println!(
        "{:<28} {:>10.2} {:>12.1}",
        "on-line (batched DEMT)", on_crit.makespan, on_crit.weighted_completion
    );
    println!(
        "{:<28} {:>10.2} {:>12.1}",
        "clairvoyant off-line DEMT", off_crit.makespan, off_crit.weighted_completion
    );
    println!(
        "\non-line Cmax / (off-line Cmax + last release) = {:.2}  (§2.2 argument bounds this by ρ ≈ 2)",
        on_crit.makespan / (off_crit.makespan + last_release)
    );
}
