//! The paper's motivating comparison, end to end: a cluster front-end
//! receiving a live job stream (Fig. 1) under three disciplines —
//!
//! 1. **FCFS** over rigid user requests (§1.2's "simple rules"),
//! 2. **EASY backfilling** over the same rigid requests (MAUI-style),
//! 3. **DEMT batches** exploiting moldability (the paper's system,
//!    lifted on-line with the §2.2 batch framework).
//!
//! Reports the operator metrics: mean wait, mean response, bounded
//! slowdown, p95 response, utilization — at two congestion levels.
//!
//! ```text
//! cargo run --release --example frontend_showdown
//! ```

use demt::frontend::{
    moldable_instance, moldable_schedule, queue_schedule, rigid_instance, stream_metrics,
    submit_stream, ArrivalModel, QueuePolicy, StreamSpec,
};
use demt::prelude::*;

fn main() {
    let m = 32;
    for (label, gap, arrivals) in [
        ("relaxed (1 job / 1.2t)", 1.2, ArrivalModel::Poisson),
        ("congested (1 job / 0.3t)", 0.3, ArrivalModel::Poisson),
        ("bursty (Pareto α=1.8)", 0.3, ArrivalModel::Pareto),
    ] {
        let spec = StreamSpec {
            kind: WorkloadKind::Cirne,
            jobs: 80,
            procs: m,
            mean_interarrival: gap,
            arrivals,
            pareto_shape: 1.8,
            seed: 4242,
        };
        let jobs = submit_stream(&spec);
        println!(
            "=== {label}: {} jobs on {m} nodes over [0, {:.1}] ===",
            jobs.len(),
            jobs.last().unwrap().release
        );

        // Rigid paths.
        let rigid_inst = rigid_instance(m, &jobs);
        let releases: Vec<f64> = jobs.iter().map(|j| j.release).collect();
        let fcfs = queue_schedule(m, &jobs, QueuePolicy::Fcfs);
        validate_with_releases(&rigid_inst, &fcfs, Some(&releases)).expect("fcfs feasible");
        let easy = queue_schedule(m, &jobs, QueuePolicy::EasyBackfill);
        validate_with_releases(&rigid_inst, &easy, Some(&releases)).expect("easy feasible");

        // Moldable path: on-line DEMT, resolved from the registry.
        let (mold_inst, _) = moldable_instance(m, &jobs);
        let demt = moldable_schedule(m, &jobs, registry().by_name("demt").expect("registered"))
            .expect("generated stream is well-formed");
        validate_with_releases(&mold_inst, &demt, Some(&releases)).expect("demt feasible");

        println!(
            "{:<26} {:>10} {:>10} {:>10} {:>10} {:>8}",
            "policy", "wait", "response", "slowdown", "p95 resp", "util"
        );
        for (name, schedule) in [
            ("FCFS (rigid)", &fcfs),
            ("EASY backfill (rigid)", &easy),
            ("DEMT batches (moldable)", &demt),
        ] {
            let s = stream_metrics(&jobs, schedule, m);
            println!(
                "{:<26} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>7.0}%",
                name,
                s.mean_wait,
                s.mean_response,
                s.mean_bounded_slowdown,
                s.p95_response,
                s.utilization * 100.0
            );
        }
        println!();
    }
    println!(
        "(what the table shows: backfilling helps rigid queues under\n\
         congestion, but moldability — the paper's §2.1 thesis — is the\n\
         structurally bigger lever on response time)"
    );
}
