//! The §5 open problems, exercised together: **node reservations**
//! ("the reservation of nodes which reduces the size of the cluster")
//! and a **mix of job types** (moldable jobs alongside rigid ones).
//!
//! A 16-node cluster has a rolling maintenance window (4 nodes down for
//! the first third of the horizon, another 4 down for the middle
//! third). The workload mixes moldable Cirne jobs with rigid jobs at
//! user-fixed sizes. DEMT plans the batch order and allotments; the
//! reservation-aware backfilling engine of `demt-platform` places the
//! resulting list around the windows.
//!
//! ```text
//! cargo run --release --example maintenance_window
//! ```

use demt::model::MoldableTask;
use demt::prelude::*;

fn main() {
    let m = 16;

    // Workload: 14 moldable jobs + 6 rigid jobs (power-of-two sizes).
    let moldable = generate(WorkloadKind::Cirne, 14, m, 99);
    let mut b = InstanceBuilder::new(m);
    for t in moldable.tasks() {
        b.push_task(t.clone()).unwrap();
    }
    for (i, &(procs, time)) in [
        (4usize, 3.0),
        (2, 5.0),
        (8, 2.0),
        (1, 6.0),
        (4, 2.5),
        (2, 4.0),
    ]
    .iter()
    .enumerate()
    {
        let id = b.next_id();
        b.push_task(MoldableTask::rigid(id, 2.0 + i as f64 * 0.5, procs, time, m).unwrap())
            .unwrap();
    }
    let inst = b.build().unwrap();
    println!(
        "{} jobs ({} moldable + 6 rigid) on {} nodes",
        inst.len(),
        14,
        m
    );

    // DEMT plans order + allotments on the full machine.
    let plan = demt_schedule(&inst, &DemtConfig::default());
    let order: Vec<ListTask> = {
        let mut placements = plan.schedule.placements().to_vec();
        placements.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        placements
            .iter()
            .map(|p| ListTask::new(p.task, p.alloc(), p.duration))
            .collect()
    };

    // Rolling maintenance: nodes 12-15 down during [0, 8), nodes 8-11
    // down during [8, 16).
    let reservations = vec![
        Reservation {
            start: 0.0,
            duration: 8.0,
            procs: vec![12, 13, 14, 15],
        },
        Reservation {
            start: 8.0,
            duration: 8.0,
            procs: vec![8, 9, 10, 11],
        },
    ];
    let schedule = backfill_schedule(m, &order, &reservations);
    assert_valid(&inst, &schedule);
    let with_res = Criteria::evaluate(&inst, &schedule);
    let without = &plan.criteria;

    println!("\nmaintenance: nodes 12-15 down in [0,8), nodes 8-11 down in [8,16)\n");
    println!(
        "{:<28} {:>10} {:>14} {:>12}",
        "", "Cmax", "Σ wᵢCᵢ", "utilization"
    );
    println!(
        "{:<28} {:>10.2} {:>14.1} {:>11.0}%",
        "full cluster (DEMT)",
        without.makespan,
        without.weighted_completion,
        without.utilization * 100.0
    );
    println!(
        "{:<28} {:>10.2} {:>14.1} {:>11.0}%",
        "with maintenance windows",
        with_res.makespan,
        with_res.weighted_completion,
        with_res.utilization * 100.0
    );
    println!(
        "\nreservation cost: Cmax ×{:.2}, Σ wᵢCᵢ ×{:.2}",
        with_res.makespan / without.makespan,
        with_res.weighted_completion / without.weighted_completion
    );

    println!("\nschedule around the windows (reserved areas appear idle):");
    print!("{}", render_gantt(&schedule, 84));
}
