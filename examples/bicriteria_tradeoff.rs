//! The bi-criteria trade-off that motivates the paper: single-criterion
//! schedulers sacrifice the other criterion, DEMT balances both.
//!
//! Sweeps the four workload families on one mid-size instance each and
//! prints the (Cmax ratio, Σ wᵢCᵢ ratio) pair per algorithm, plus a
//! DEMT ablation showing what each §3.2 design ingredient buys.
//!
//! ```text
//! cargo run --release --example bicriteria_tradeoff
//! ```

use demt::prelude::*;

fn main() {
    let m = 64;
    let n = 120;
    for kind in WorkloadKind::ALL {
        let inst = generate(kind, n, m, 555);
        let bounds = instance_bounds(&inst, &BoundConfig::default());
        let dual = dual_approx(&inst, &DualConfig::default());

        println!(
            "=== {} workload (paper Fig. {}) — n={n}, m={m} ===",
            kind.name(),
            kind.figure()
        );
        println!(
            "{:<26} {:>11} {:>11}",
            "algorithm", "Cmax ratio", "ΣwᵢCᵢ ratio"
        );
        let show = |name: &str, s: &Schedule| {
            assert_valid(&inst, s);
            let c = Criteria::evaluate(&inst, s);
            println!(
                "{:<26} {:>11.2} {:>11.2}",
                name,
                c.makespan / bounds.cmax,
                c.weighted_completion / bounds.minsum
            );
        };

        show(
            "DEMT (paper default)",
            &demt_schedule(&inst, &DemtConfig::default()).schedule,
        );
        show("Gang", &gang(&inst));
        show("Sequential LPTF", &sequential_lptf(&inst));
        show("List [7] order", &list_shelf(&inst, &dual));
        show("List weighted-LPTF", &list_wlptf(&inst, &dual));
        show("List SAF", &list_saf(&inst, &dual));

        // DEMT ablation: peel the pipeline back one stage at a time.
        let stages: [(&str, DemtConfig); 4] = [
            (
                "DEMT raw batches",
                DemtConfig {
                    compaction: Compaction::None,
                    ..DemtConfig::default()
                },
            ),
            (
                "DEMT + pull-earlier",
                DemtConfig {
                    compaction: Compaction::PullEarlier,
                    ..DemtConfig::default()
                },
            ),
            (
                "DEMT + list compaction",
                DemtConfig {
                    compaction: Compaction::List,
                    ..DemtConfig::default()
                },
            ),
            ("DEMT + shuffles (full)", DemtConfig::default()),
        ];
        for (name, cfg) in &stages {
            show(name, &demt_schedule(&inst, cfg).schedule);
        }
        println!();
    }
}
