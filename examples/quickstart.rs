//! Quickstart: generate a workload, schedule it with DEMT, compare both
//! criteria against the baselines and the certified lower bounds, and
//! print a Gantt chart.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use demt::prelude::*;

fn main() {
    // A small cluster and a realistic moldable workload (the paper's
    // Cirne–Berman model): 24 jobs on 16 processors.
    let m = 16;
    let inst = generate(WorkloadKind::Cirne, 24, m, 7);
    println!(
        "instance: {} moldable jobs on {} processors (total minimal work {:.1})",
        inst.len(),
        inst.procs(),
        inst.stats().total_min_work
    );

    // Certified lower bounds for both criteria (§3.3 of the paper).
    let bounds = instance_bounds(&inst, &BoundConfig::default());
    println!(
        "lower bounds: Cmax ≥ {:.2},  Σ wᵢCᵢ ≥ {:.1}\n",
        bounds.cmax, bounds.minsum
    );

    // DEMT (the paper's algorithm) and the five §4.1 baselines, all
    // resolved from the workspace registry; the shared context computes
    // the dual approximation once for everyone.
    let mut ctx = SchedulerContext::new();
    println!(
        "{:<16} {:>10} {:>8} {:>12} {:>8}",
        "algorithm", "Cmax", "ratio", "Σ wᵢCᵢ", "ratio"
    );
    for alg in registry().all() {
        let r = alg.schedule(&inst, &mut ctx);
        assert_valid(&inst, &r.schedule);
        println!(
            "{:<16} {:>10.2} {:>8.2} {:>12.1} {:>8.2}",
            alg.legend(),
            r.criteria.makespan,
            r.criteria.makespan / bounds.cmax,
            r.criteria.weighted_completion,
            r.criteria.weighted_completion / bounds.minsum
        );
    }

    // The DEMT result struct still exposes the batch-plan diagnostics.
    let demt = demt_schedule(&inst, &DemtConfig::default());

    println!(
        "\nDEMT schedule (each column ≈ {:.2} time units):",
        demt.criteria.makespan / 72.0
    );
    print!("{}", render_gantt(&demt.schedule, 72));
    println!(
        "\nutilization {:.0}%  idle area {:.1}  batches used: {}",
        Criteria::evaluate(&inst, &demt.schedule).utilization * 100.0,
        demt.criteria.idle_area,
        demt.plan.batches.len()
    );
}
