//! All three §5 job types in one instance: **moldable** jobs (Cirne
//! model), **rigid** jobs (user-fixed sizes), and **divisible-load**
//! jobs (pure splittable work), co-scheduled by DEMT through the
//! moldable bridge — exactly "the mix of different types of jobs" the
//! paper leaves as future work.
//!
//! Also shows the divisible jobs' two analytic optima (McNaughton
//! preemptive makespan, Smith-gang minsum) as calibration anchors for
//! how little DEMT loses on them.
//!
//! ```text
//! cargo run --release --example job_type_mix
//! ```

use demt::divisible::{mcnaughton_optimum, smith_gang, to_moldable, WorkJob};
use demt::model::MoldableTask;
use demt::prelude::*;

fn main() {
    let m = 24;

    // 10 moldable jobs from the Cirne model.
    let moldable = generate(WorkloadKind::Cirne, 10, m, 31);

    let mut b = InstanceBuilder::new(m);
    for t in moldable.tasks() {
        b.push_task(t.clone()).unwrap();
    }
    // 4 rigid jobs.
    for &(procs, time, w) in &[
        (4usize, 2.0, 3.0),
        (8, 1.5, 1.0),
        (2, 4.0, 2.0),
        (6, 2.5, 1.5),
    ] {
        let id = b.next_id();
        b.push_task(MoldableTask::rigid(id, w, procs, time, m).unwrap())
            .unwrap();
    }
    // 4 divisible-load jobs, bridged as linear tasks.
    let divisible: Vec<WorkJob> = [(18.0, 2.0), (36.0, 1.0), (9.0, 4.0), (24.0, 1.2)]
        .iter()
        .enumerate()
        .map(|(i, &(work, weight))| WorkJob {
            id: TaskId(14 + i),
            work,
            weight,
        })
        .collect();
    for j in &divisible {
        b.push_task(to_moldable(j, m)).unwrap();
    }
    let inst = b.build().unwrap();
    println!(
        "{} jobs on {m} nodes: 10 moldable + 4 rigid + 4 divisible\n",
        inst.len()
    );

    let r = demt_schedule(&inst, &DemtConfig::default());
    assert_valid(&inst, &r.schedule);
    let bounds = instance_bounds(&inst, &BoundConfig::default());
    println!(
        "DEMT on the mix: Cmax {:.2} (ratio {:.2}), ΣwᵢCᵢ {:.1} (ratio {:.2})",
        r.criteria.makespan,
        r.criteria.makespan / bounds.cmax,
        r.criteria.weighted_completion,
        r.criteria.weighted_completion / bounds.minsum
    );

    // Divisible-only anchors.
    let pre_cmax = mcnaughton_optimum(&divisible, m);
    let smith = smith_gang(&divisible, m);
    println!(
        "\ndivisible jobs alone: preemptive Cmax* = {:.3}, Smith-gang ΣwᵢCᵢ* = {:.3}",
        pre_cmax,
        smith.weighted_completion(&divisible)
    );
    let div_completions: Vec<f64> = divisible
        .iter()
        .map(|j| r.schedule.placement_of(j.id).unwrap().completion())
        .collect();
    println!(
        "inside the DEMT mix they finish at {:?}",
        div_completions
            .iter()
            .map(|c| (c * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    println!("\nGantt (rigid jobs are E-H, divisible are I-L):");
    print!("{}", render_gantt(&r.schedule, 76));
}
