//! End-to-end tests of the `demt` CLI binary: the generate → schedule →
//! validate → bound → gantt pipeline through real process invocations.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn demt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_demt"))
}

fn run_with_stdin(mut cmd: Command, stdin: &[u8]) -> (String, String, bool) {
    cmd.stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn demt");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(stdin)
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn generate_schedule_validate_pipeline() {
    let out = demt()
        .args([
            "generate", "--kind", "mixed", "--tasks", "10", "--procs", "6", "--seed", "3",
        ])
        .output()
        .expect("generate");
    assert!(out.status.success());
    let inst_json = out.stdout;
    assert!(String::from_utf8_lossy(&inst_json).contains("\"tasks\""));

    let mut sched = demt();
    sched.args(["schedule", "--algorithm", "demt"]);
    let (sched_json, stderr, ok) = run_with_stdin(sched, &inst_json);
    assert!(ok, "schedule failed: {stderr}");
    assert!(
        stderr.contains("Cmax"),
        "criteria printed to stderr: {stderr}"
    );

    // Validate needs the instance as a file.
    let dir = std::env::temp_dir().join(format!("demt-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst_path = dir.join("inst.json");
    std::fs::write(&inst_path, &inst_json).unwrap();

    let mut validate = demt();
    validate.args(["validate", "--instance", inst_path.to_str().unwrap()]);
    let (vout, _, ok) = run_with_stdin(validate, sched_json.as_bytes());
    assert!(ok);
    assert!(vout.contains("VALID"), "{vout}");

    let mut gantt = demt();
    gantt.args([
        "gantt",
        "--instance",
        inst_path.to_str().unwrap(),
        "--width",
        "40",
    ]);
    let (gout, _, ok) = run_with_stdin(gantt, sched_json.as_bytes());
    assert!(ok);
    assert_eq!(
        gout.lines().count(),
        7,
        "header + 6 processor rows:\n{gout}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bound_and_exact_agree_on_ordering() {
    let out = demt()
        .args([
            "generate", "--kind", "cirne", "--tasks", "5", "--procs", "3", "--seed", "7",
        ])
        .output()
        .expect("generate");
    let inst_json = out.stdout;

    let mut bound_cmd = demt();
    bound_cmd.arg("bound");
    let (bound_out, _, ok) = run_with_stdin(bound_cmd, &inst_json);
    assert!(ok);
    let bounds: serde_json::Value = serde_json::from_str(&bound_out).unwrap();

    let mut exact_cmd = demt();
    exact_cmd.arg("exact");
    let (exact_out, _, ok) = run_with_stdin(exact_cmd, &inst_json);
    assert!(ok);
    let exact: serde_json::Value = serde_json::from_str(&exact_out).unwrap();

    let lb_cmax = bounds["cmax_lower_bound"].as_f64().unwrap();
    let opt_cmax = exact["optimal_cmax"].as_f64().unwrap();
    assert!(
        lb_cmax <= opt_cmax * (1.0 + 1e-7),
        "bound {lb_cmax} vs optimum {opt_cmax}"
    );
    let lb_minsum = bounds["minsum_lower_bound"].as_f64().unwrap();
    let opt_minsum = exact["optimal_minsum"].as_f64().unwrap();
    assert!(lb_minsum <= opt_minsum * (1.0 + 1e-7));
}

#[test]
fn corrupted_schedule_is_rejected_with_nonzero_exit() {
    let out = demt()
        .args([
            "generate", "--kind", "highly", "--tasks", "6", "--procs", "4", "--seed", "1",
        ])
        .output()
        .expect("generate");
    let inst_json = out.stdout;
    let mut sched = demt();
    sched.args(["schedule", "--algorithm", "gang"]);
    let (sched_json, _, _) = run_with_stdin(sched, &inst_json);

    // Corrupt: drop one placement.
    let mut v: serde_json::Value = serde_json::from_str(&sched_json).unwrap();
    let placements = v["placements"].as_array_mut().unwrap();
    placements.pop();

    let dir = std::env::temp_dir().join(format!("demt-cli-neg-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst_path = dir.join("inst.json");
    std::fs::write(&inst_path, &inst_json).unwrap();

    let mut validate = demt();
    validate.args(["validate", "--instance", inst_path.to_str().unwrap()]);
    let (vout, _, ok) = run_with_stdin(validate, v.to_string().as_bytes());
    assert!(!ok, "corrupted schedule must fail validation");
    assert!(vout.contains("INVALID"), "{vout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_lists_all_commands() {
    let out = demt().arg("--help").output().expect("help");
    let text = String::from_utf8_lossy(&out.stdout);
    for cmd in [
        "generate",
        "schedule",
        "algorithms",
        "validate",
        "bound",
        "gantt",
        "exact",
        "frontend",
        "swf",
        "repro",
    ] {
        assert!(text.contains(cmd), "help is missing {cmd}");
    }
}

#[test]
fn repro_subcommand_is_deterministic_across_worker_counts() {
    // `demt repro` shares the repro driver: a tiny sweep with the
    // wall-clock fields zeroed must emit byte-identical JSON for any
    // worker count (the index-ordered reduction guarantee, end to end).
    let dir = std::env::temp_dir().join(format!("demt-cli-repro-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json_for = |workers: &str| -> Vec<u8> {
        let path = dir.join(format!("w{workers}.json"));
        let out = demt()
            .args([
                "repro",
                "fig6",
                "--tasks",
                "8,12",
                "--procs",
                "12",
                "--runs",
                "2",
                "--no-timing",
                "--workers",
                workers,
                "--out",
                dir.to_str().unwrap(),
                "--json",
                path.to_str().unwrap(),
            ])
            .output()
            .expect("run demt repro");
        assert!(
            out.status.success(),
            "repro failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read(&path).expect("json written")
    };
    let w1 = json_for("1");
    let w3 = json_for("3");
    assert!(!w1.is_empty());
    assert_eq!(w1, w3, "worker count changed the output bytes");
    // The CSV series land next to the JSON, same as the repro binary.
    assert!(dir.join("fig6_cirne.csv").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn algorithms_command_lists_the_registry() {
    let out = demt().arg("algorithms").output().expect("algorithms");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["demt", "gang", "sequential", "list", "lptf", "saf"] {
        assert!(text.contains(name), "registry listing missing {name}");
    }
    assert!(text.contains("DEMT") && text.contains("LPTF"), "{text}");
}

#[test]
fn unknown_algorithm_error_lists_registry_names() {
    let out = demt()
        .args([
            "generate", "--kind", "mixed", "--tasks", "4", "--procs", "2", "--seed", "1",
        ])
        .output()
        .expect("generate");
    let mut sched = demt();
    sched.args(["schedule", "--algorithm", "bogus"]);
    let (_, stderr, ok) = run_with_stdin(sched, &out.stdout);
    assert!(!ok, "bogus algorithm must fail");
    assert!(stderr.contains("unknown --algorithm bogus"), "{stderr}");
    // The accepted-values list is derived from the registry, so every
    // registered name must appear in the message.
    for name in ["demt", "gang", "sequential", "list", "lptf", "saf"] {
        assert!(
            stderr.contains(name),
            "error message missing {name}: {stderr}"
        );
    }
}

#[test]
fn metrics_json_emits_machine_readable_criteria_on_stderr() {
    let out = demt()
        .args([
            "generate", "--kind", "cirne", "--tasks", "10", "--procs", "6", "--seed", "2",
        ])
        .output()
        .expect("generate");
    let mut sched = demt();
    sched.args(["schedule", "--algorithm", "lptf", "--metrics", "json"]);
    let (stdout, stderr, ok) = run_with_stdin(sched, &out.stdout);
    assert!(ok, "{stderr}");
    // stdout stays the plain schedule (pipeline compatibility)…
    let schedule: serde_json::Value = serde_json::from_str(&stdout).unwrap();
    assert!(schedule["placements"].as_array().is_some());
    // …while stderr carries the report as one JSON object.
    let metrics: serde_json::Value = serde_json::from_str(stderr.trim()).unwrap();
    assert_eq!(metrics["algorithm"].as_str().unwrap(), "lptf");
    assert!(metrics["criteria"]["makespan"].as_f64().unwrap() > 0.0);
    assert!(metrics["criteria"]["weighted_completion"].as_f64().unwrap() > 0.0);
    assert!(metrics["wall_seconds"].as_f64().unwrap() >= 0.0);
    let phases = metrics["phases"].as_array().unwrap();
    assert!(
        phases.iter().any(|p| p["phase"].as_str() == Some("dual")),
        "lptf report must include the dual phase: {stderr}"
    );
}

#[test]
fn frontend_supports_pareto_arrivals() {
    let out = demt()
        .args([
            "frontend",
            "--jobs",
            "14",
            "--procs",
            "8",
            "--gap",
            "0.5",
            "--seed",
            "3",
            "--arrivals",
            "pareto",
            "--shape",
            "2.0",
        ])
        .output()
        .expect("frontend");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("DEMT"), "{text}");
    assert!(text.contains("FCFS"), "{text}");

    let bad = demt()
        .args(["frontend", "--jobs", "4", "--arrivals", "lognormal"])
        .output()
        .expect("frontend");
    assert!(!bad.status.success(), "bad arrival model must be rejected");

    // Shapes α ≤ 1 have no finite mean: a clean CLI error, not a panic.
    let bad_shape = demt()
        .args([
            "frontend",
            "--jobs",
            "4",
            "--arrivals",
            "pareto",
            "--shape",
            "1.0",
        ])
        .output()
        .expect("frontend");
    assert!(!bad_shape.status.success());
    assert_eq!(bad_shape.status.code(), Some(2), "die(), not a panic");
    let err = String::from_utf8_lossy(&bad_shape.stderr);
    assert!(err.contains("bad --shape"), "{err}");
}

#[test]
fn every_algorithm_round_trips_and_respects_bounds() {
    // generate → schedule (each algorithm) → validate → bound, all via
    // JSON stdin/stdout, asserting every schedule beats neither bound.
    let out = demt()
        .args([
            "generate", "--kind", "cirne", "--tasks", "12", "--procs", "8", "--seed", "11",
        ])
        .output()
        .expect("generate");
    assert!(out.status.success());
    let inst_json = out.stdout;

    let mut bound_cmd = demt();
    bound_cmd.arg("bound");
    let (bound_out, _, ok) = run_with_stdin(bound_cmd, &inst_json);
    assert!(ok);
    let bounds: serde_json::Value = serde_json::from_str(&bound_out).unwrap();
    let lb_cmax = bounds["cmax_lower_bound"].as_f64().unwrap();
    let lb_minsum = bounds["minsum_lower_bound"].as_f64().unwrap();
    assert!(
        lb_cmax > 0.0 && lb_minsum > 0.0,
        "degenerate bounds: {bound_out}"
    );

    let dir = std::env::temp_dir().join(format!("demt-cli-algos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let inst_path = dir.join("inst.json");
    std::fs::write(&inst_path, &inst_json).unwrap();

    for alg in ["demt", "gang", "sequential", "list", "lptf", "saf"] {
        let mut sched = demt();
        sched.args(["schedule", "--algorithm", alg]);
        let (sched_json, stderr, ok) = run_with_stdin(sched, &inst_json);
        assert!(ok, "{alg} schedule failed: {stderr}");

        let mut validate = demt();
        validate.args(["validate", "--instance", inst_path.to_str().unwrap()]);
        let (vout, _, ok) = run_with_stdin(validate, sched_json.as_bytes());
        assert!(ok, "{alg}: {vout}");
        assert!(vout.contains("VALID"), "{alg}: {vout}");

        // `validate` prints "Cmax = X, ΣwᵢCᵢ = Y"; both must dominate
        // the certified lower bounds.
        let grab = |label: &str| -> f64 {
            let tail =
                &vout[vout.find(label).unwrap_or_else(|| panic!("{alg}: {vout}")) + label.len()..];
            tail.trim_start()
                .trim_start_matches('=')
                .trim_start()
                .split(|c: char| !(c.is_ascii_digit() || c == '.'))
                .next()
                .unwrap()
                .parse()
                .unwrap_or_else(|e| panic!("{alg}: bad {label} in {vout}: {e}"))
        };
        let cmax = grab("Cmax");
        let minsum = grab("ΣwᵢCᵢ");
        // `validate` prints with 4 decimal places, so allow the print
        // quantization (5e-5 absolute) on top of float slack.
        assert!(
            cmax >= lb_cmax * (1.0 - 1e-7) - 1e-4,
            "{alg}: Cmax {cmax} below lower bound {lb_cmax}"
        );
        assert!(
            minsum >= lb_minsum * (1.0 - 1e-7) - 1e-4,
            "{alg}: ΣwᵢCᵢ {minsum} below lower bound {lb_minsum}"
        );
    }

    std::fs::remove_dir_all(&dir).ok();
}
