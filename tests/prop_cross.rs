//! Cross-crate property tests: every scheduler emits valid schedules
//! dominating the certified bounds, on arbitrary monotonic instances
//! (not just the generator families).

use demt::prelude::*;
use proptest::prelude::*;

/// Arbitrary monotonic instance built from per-task (seq, degree, weight)
/// triples via the constant-degree recursion.
fn arb_instance() -> impl Strategy<Value = Instance> {
    (2usize..10, 1usize..25).prop_flat_map(|(m, n)| {
        prop::collection::vec((0.2f64..20.0, 0.0f64..1.0, 0.1f64..10.0), n..=n).prop_map(
            move |rows| {
                let mut b = InstanceBuilder::new(m);
                for (seq, alpha, w) in rows {
                    let times = demt::workload::recursive_times_const(seq, m, alpha);
                    b.push_times(w, times).unwrap();
                }
                b.build().unwrap()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_schedulers_valid_and_above_bounds(inst in arb_instance()) {
        let bounds = instance_bounds(&inst, &BoundConfig::default());
        let dual = dual_approx(&inst, &DualConfig::default());
        let demt = demt_schedule(&inst, &DemtConfig::default());
        let all: Vec<(&str, Schedule)> = vec![
            ("demt", demt.schedule.clone()),
            ("gang", gang(&inst)),
            ("sequential", sequential_lptf(&inst)),
            ("list", list_shelf(&inst, &dual)),
            ("lptf", list_wlptf(&inst, &dual)),
            ("saf", list_saf(&inst, &dual)),
        ];
        for (name, s) in &all {
            prop_assert!(validate(&inst, s).is_ok(), "{name}: {:?}", validate(&inst, s));
            let c = Criteria::evaluate(&inst, s);
            prop_assert!(c.makespan >= bounds.cmax * (1.0 - 1e-7),
                "{name}: makespan {} < bound {}", c.makespan, bounds.cmax);
            prop_assert!(c.weighted_completion >= bounds.minsum * (1.0 - 1e-7),
                "{name}: minsum {} < bound {}", c.weighted_completion, bounds.minsum);
        }
    }

    #[test]
    fn demt_allotments_never_exceed_machine(inst in arb_instance()) {
        let r = demt_schedule(&inst, &DemtConfig::default());
        for p in r.schedule.placements() {
            prop_assert!(p.alloc() <= inst.procs());
        }
        // Batch plan consistency: every task in exactly one batch entry.
        let mut count = vec![0usize; inst.len()];
        for b in &r.plan.batches {
            prop_assert!(b.procs_used() <= inst.procs());
            for e in &b.entries {
                for id in &e.tasks {
                    count[id.index()] += 1;
                }
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
    }

    #[test]
    fn dual_bound_sandwich(inst in arb_instance()) {
        let dual = dual_approx(&inst, &DualConfig::default());
        prop_assert!(dual.lower_bound <= dual.lambda * (1.0 + 1e-9));
        prop_assert!(dual.cmax_estimate >= dual.lower_bound * (1.0 - 1e-9));
        // The constructed schedule is what the estimate claims.
        prop_assert!((dual.schedule.makespan() - dual.cmax_estimate).abs() < 1e-9);
    }

    #[test]
    fn minsum_bound_scales_with_weights(inst in arb_instance()) {
        // Doubling every weight doubles the (weighted) bound: the LP and
        // trivial terms are both 1-homogeneous in w.
        let b1 = minsum_lower_bound(&inst, &BoundConfig::default());
        let mut builder = InstanceBuilder::new(inst.procs());
        for t in inst.tasks() {
            let mut t2 = t.clone();
            t2.set_weight(t.weight() * 2.0);
            builder.push_task(t2).unwrap();
        }
        let doubled = builder.build().unwrap();
        let b2 = minsum_lower_bound(&doubled, &BoundConfig::default());
        prop_assert!((b2.value - 2.0 * b1.value).abs() <= 1e-5 * b2.value.max(1.0),
            "bound not 1-homogeneous: {} vs 2×{}", b2.value, b1.value);
    }
}
