//! On-line wrapper over every off-line scheduler: release dates are
//! honoured, nothing is lost, and the batch structure is causal.

use demt::prelude::*;
use rand::Rng;

fn jobs_with_releases(kind: WorkloadKind, n: usize, m: usize, seed: u64) -> Vec<OnlineJob> {
    let inst = generate(kind, n, m, seed);
    let mut rng = demt::distr::seeded_rng(seed.wrapping_mul(31) ^ 5);
    inst.tasks()
        .iter()
        .map(|t| OnlineJob {
            task: t.clone(),
            release: rng.random_range(0.0..12.0),
        })
        .collect()
}

#[test]
fn online_over_every_registry_entry() {
    let m = 16;
    let jobs = jobs_with_releases(WorkloadKind::Mixed, 40, m, 8);
    let releases: Vec<f64> = jobs.iter().map(|j| j.release).collect();
    let inst = Instance::new(m, jobs.iter().map(|j| j.task.clone()).collect()).unwrap();

    for scheduler in registry().all() {
        let result = online_batch_schedule(m, &jobs, scheduler);
        let name = scheduler.name();
        validate_with_releases(&inst, &result.schedule, Some(&releases))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(result.schedule.len(), jobs.len(), "{name} lost a job");
        for w in result.batches.windows(2) {
            assert!(
                w[1].start >= w[0].start + w[0].length - 1e-9,
                "{name}: overlapping batches"
            );
        }
    }
}

#[test]
fn online_wrapper_distinguishes_two_registry_entries() {
    // Two different registry entries drive the same job stream to
    // different schedules — the wrapper really dispatches on the trait.
    let m = 8;
    let jobs = jobs_with_releases(WorkloadKind::Cirne, 30, m, 21);
    let releases: Vec<f64> = jobs.iter().map(|j| j.release).collect();
    let inst = Instance::new(m, jobs.iter().map(|j| j.task.clone()).collect()).unwrap();

    let demt = online_batch_schedule(m, &jobs, registry().by_name("demt").unwrap());
    let gang = online_batch_schedule(m, &jobs, registry().by_name("gang").unwrap());
    for (name, r) in [("demt", &demt), ("gang", &gang)] {
        validate_with_releases(&inst, &r.schedule, Some(&releases))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
    assert_ne!(
        demt.schedule, gang.schedule,
        "demt and gang batches should differ on a moldable stream"
    );
    // Gang serializes every batch on all m processors, so it cannot
    // beat DEMT's makespan here.
    assert!(demt.schedule.makespan() <= gang.schedule.makespan() + 1e-9);
}

#[test]
fn online_makespan_respects_doubling_bound_for_demt() {
    // §2.2: total length ≤ 2ρ × optimal on-line makespan. Using the
    // certified off-line bound + last release as a proxy for the on-line
    // optimum and DEMT's empirical ρ ≲ 2, the ratio stays small.
    for seed in [3u64, 17, 29] {
        let m = 16;
        let jobs = jobs_with_releases(WorkloadKind::Cirne, 50, m, seed);
        let inst = Instance::new(m, jobs.iter().map(|j| j.task.clone()).collect()).unwrap();
        let result = online_batch_schedule(m, &jobs, registry().by_name("demt").unwrap());
        let proxy_opt =
            cmax_lower_bound(&inst, 1e-3).max(jobs.iter().map(|j| j.release).fold(0.0, f64::max));
        let ratio = result.schedule.makespan() / proxy_opt;
        assert!(ratio < 5.0, "seed {seed}: online ratio {ratio}");
    }
}

#[test]
fn staggered_releases_produce_multiple_batches() {
    let m = 8;
    let inst = generate(WorkloadKind::WeaklyParallel, 30, m, 4);
    let jobs: Vec<OnlineJob> = inst
        .tasks()
        .iter()
        .enumerate()
        .map(|(i, t)| OnlineJob {
            task: t.clone(),
            release: i as f64 * 0.8,
        })
        .collect();
    let result = online_batch_schedule(m, &jobs, registry().by_name("demt").unwrap());
    assert!(
        result.batches.len() >= 3,
        "expected several batches, got {}",
        result.batches.len()
    );
    // Every job appears in exactly one batch.
    let mut seen = vec![false; jobs.len()];
    for b in &result.batches {
        for id in &b.jobs {
            assert!(!seen[id.index()]);
            seen[id.index()] = true;
        }
    }
    assert!(seen.iter().all(|&s| s));
}
