//! Round-trip test for the checked-in SWF sample trace: library-level
//! parse → write → reparse equality, stream lifting invariants, and an
//! end-to-end `demt swf` CLI replay.

use demt::frontend::{parse_swf, stream_from_swf, write_swf};
use std::process::Command;

fn sample_path() -> String {
    format!("{}/tests/data/sample.swf", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn sample_trace_parses_and_round_trips() {
    let text = std::fs::read_to_string(sample_path()).expect("sample trace checked in");
    let records = parse_swf(&text).expect("sample trace is well-formed");
    assert_eq!(records.len(), 15, "fixture carries 15 data lines");

    // Write → reparse must be the identity on the consumed fields.
    let rewritten = write_swf(&records);
    let back = parse_swf(&rewritten).expect("writer emits valid SWF");
    assert_eq!(records, back);

    // The drop rules: job 5 has no runtime, job 7 no processor count.
    let jobs = stream_from_swf(&records, 64, 42);
    assert_eq!(jobs.len(), 13, "two unusable records dropped");
    for j in &jobs {
        assert!(j.rigid_procs >= 1 && j.rigid_procs <= 64);
        assert!(j.release >= 0.0);
        assert!(j.task.is_monotonic(), "{:?}", j.task.monotony_violation());
    }
    // Releases are sorted and ids dense after the lift.
    for (i, w) in jobs.windows(2).enumerate() {
        assert!(w[1].release >= w[0].release, "job {i} out of order");
    }
    for (i, j) in jobs.iter().enumerate() {
        assert_eq!(j.task.id().index(), i);
    }
}

#[test]
fn demt_swf_replays_the_sample_trace() {
    let out = Command::new(env!("CARGO_BIN_EXE_demt"))
        .args([
            "swf",
            "--file",
            &sample_path(),
            "--procs",
            "32",
            "--seed",
            "3",
        ])
        .output()
        .expect("run demt swf");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "demt swf failed: {stderr}");
    assert!(
        stderr.contains("15 records, 13 usable jobs"),
        "summary line mismatch: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for policy in ["FCFS", "EASY", "DEMT"] {
        assert!(stdout.contains(policy), "missing {policy} row: {stdout}");
    }
}
