//! Registry conformance: every registered scheduler × every workload
//! family must produce a valid schedule, report criteria identical to a
//! fresh `Criteria::evaluate`, and round-trip through `by_name`; the
//! shared context must run the dual approximation at most once per
//! instance no matter how many schedulers consume it.

use demt::prelude::*;

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * a.abs().max(b.abs()).max(1.0)
}

#[test]
fn every_scheduler_conforms_on_every_workload() {
    for kind in WorkloadKind::ALL {
        let inst = generate(kind, 25, 8, 7);
        let mut ctx = SchedulerContext::new();
        for s in registry().all() {
            let report = s.schedule(&inst, &mut ctx);

            // Valid schedule.
            validate(&inst, &report.schedule)
                .unwrap_or_else(|e| panic!("{kind}/{}: {e}", s.name()));

            // Report criteria match an independent evaluation.
            let fresh = Criteria::evaluate(&inst, &report.schedule);
            assert!(
                close(report.criteria.makespan, fresh.makespan)
                    && close(
                        report.criteria.weighted_completion,
                        fresh.weighted_completion
                    )
                    && close(report.criteria.utilization, fresh.utilization),
                "{kind}/{}: report criteria {:?} diverge from evaluation {:?}",
                s.name(),
                report.criteria,
                fresh
            );

            // Identity round-trips.
            assert_eq!(report.algorithm, s.name());
            let round = registry()
                .by_name(s.name())
                .unwrap_or_else(|| panic!("{}: by_name round-trip failed", s.name()));
            assert_eq!(round.name(), s.name());
            assert_eq!(round.legend(), s.legend());

            // Diagnostics are sane.
            assert!(report.wall_seconds >= 0.0);
            assert!(report.phases.iter().all(|p| p.seconds >= 0.0));
        }
        // The headline contract of the shared context: one dual
        // approximation per instance across all six schedulers.
        assert_eq!(
            ctx.dual_runs(),
            1,
            "{kind}: dual_approx must run at most once per instance"
        );
    }
}

#[test]
fn registry_names_and_legends_are_unique() {
    let mut names = registry().names();
    assert!(!names.is_empty());
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), registry().len(), "duplicate registry names");

    let mut legends: Vec<&str> = registry().all().map(|s| s.legend()).collect();
    legends.sort_unstable();
    legends.dedup();
    assert_eq!(legends.len(), registry().len(), "duplicate legends");
}

#[test]
fn context_counts_one_dual_per_distinct_instance() {
    let a = generate(WorkloadKind::Mixed, 15, 8, 1);
    let b = generate(WorkloadKind::Mixed, 15, 8, 2);
    let mut ctx = SchedulerContext::new();
    let demt = registry().by_name("demt").unwrap();
    let lptf = registry().by_name("lptf").unwrap();
    demt.schedule(&a, &mut ctx);
    lptf.schedule(&a, &mut ctx);
    assert_eq!(ctx.dual_runs(), 1);
    demt.schedule(&b, &mut ctx);
    lptf.schedule(&b, &mut ctx);
    assert_eq!(ctx.dual_runs(), 2, "a new instance is one more dual run");
}

#[test]
fn dual_free_schedulers_never_touch_the_dual() {
    let inst = generate(WorkloadKind::Cirne, 20, 8, 3);
    let mut ctx = SchedulerContext::new();
    registry()
        .by_name("gang")
        .unwrap()
        .schedule(&inst, &mut ctx);
    registry()
        .by_name("sequential")
        .unwrap()
        .schedule(&inst, &mut ctx);
    assert_eq!(ctx.dual_runs(), 0);
}

#[test]
fn adapters_agree_with_the_original_free_functions() {
    // The adapters are thin wrappers: same schedules as the historical
    // entry points, so the original unit suites keep their meaning.
    let inst = generate(WorkloadKind::HighlyParallel, 30, 12, 9);
    let dual = dual_approx(&inst, &DualConfig::default());
    let mut ctx = SchedulerContext::new();
    let mut by = |name: &str| {
        registry()
            .by_name(name)
            .unwrap()
            .schedule(&inst, &mut ctx)
            .schedule
    };
    assert_eq!(
        by("demt"),
        demt_schedule(&inst, &DemtConfig::default()).schedule
    );
    assert_eq!(by("gang"), gang(&inst));
    assert_eq!(by("sequential"), sequential_lptf(&inst));
    assert_eq!(by("list"), list_shelf(&inst, &dual));
    assert_eq!(by("lptf"), list_wlptf(&inst, &dual));
    assert_eq!(by("saf"), list_saf(&inst, &dual));
}

#[test]
fn placements_audit_clean_on_intervals_and_replay_byte_identically() {
    // The ProcSet migration contract, per registry entry: the interval
    // audit passes directly on the interval sets, every placement's
    // ranges are canonical (sorted, disjoint, non-adjacent), and a
    // second run from a fresh context serializes byte-for-byte.
    for kind in WorkloadKind::ALL {
        let inst = generate(kind, 25, 8, 7);
        for s in registry().all() {
            let first = s.schedule(&inst, &mut SchedulerContext::new());
            validate_no_overlap(&first.schedule)
                .unwrap_or_else(|e| panic!("{kind}/{}: {e}", s.name()));
            for p in first.schedule.placements() {
                for w in p.procs.ranges().windows(2) {
                    assert!(
                        w[0].1 + 1 < w[1].0,
                        "{kind}/{}: non-canonical interval set {:?}",
                        s.name(),
                        p.procs
                    );
                }
            }
            let second = s.schedule(&inst, &mut SchedulerContext::new());
            assert_eq!(
                serde_json::to_string(&first.schedule).unwrap(),
                serde_json::to_string(&second.schedule).unwrap(),
                "{kind}/{}: replay diverged",
                s.name()
            );
        }
    }
}

#[test]
fn every_scheduler_conforms_under_the_hierarchy_adapter() {
    // 2 clusters × 2 nodes × 2 cores = the 8-processor machine the
    // conformance instances use; every entry must stay valid with
    // whole-node (even-aligned 2-core) allotments and criteria that
    // match a fresh evaluation on the *original* instance.
    let h = Hierarchy::parse("2x2x2").unwrap();
    for kind in WorkloadKind::ALL {
        let inst = generate(kind, 20, 8, 5);
        for s in registry().all() {
            let wrapped = HierarchicalScheduler::new(s, h);
            let report = wrapped.schedule(&inst, &mut SchedulerContext::new());
            validate(&inst, &report.schedule)
                .unwrap_or_else(|e| panic!("{kind}/{}: {e}", wrapped.name()));
            let fresh = Criteria::evaluate(&inst, &report.schedule);
            assert_eq!(
                report.criteria,
                fresh,
                "{kind}/{}: criteria diverge from fresh evaluation",
                wrapped.name()
            );
            for p in report.schedule.placements() {
                for &(lo, hi) in p.procs.ranges() {
                    assert!(
                        lo % 2 == 0 && hi % 2 == 1,
                        "{kind}/{}: allotment {:?} splits a node",
                        wrapped.name(),
                        p.procs
                    );
                }
            }
        }
    }
}

#[test]
fn serve_placements_are_byte_identical_for_one_and_four_workers() {
    // The daemon's worker pool only parallelizes lifting and
    // serialization; per registry entry, workers=1 and workers=4 must
    // emit the same bytes.
    let events: Vec<JobEvent> = (0..14)
        .map(|i| JobEvent::submit_rigid(i, (i / 3) as f64, 1.0, 1 + i % 5, 1.0 + (i % 3) as f64))
        .collect();
    let run = |algorithm: &str, workers: usize| {
        let mut cfg = ServeConfig::new(8);
        cfg.algorithm = algorithm.to_string();
        cfg.workers = workers;
        let mut out = Vec::new();
        let mut stats = ServeStats::new(cfg.procs);
        run_events(
            &cfg,
            events
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, e)| Ok((i + 1, e))),
            &mut out,
            &mut stats,
            None,
        )
        .unwrap_or_else(|e| panic!("{algorithm}: {e}"));
        out
    };
    for s in registry().all() {
        assert_eq!(
            run(s.name(), 1),
            run(s.name(), 4),
            "{}: workers=1 vs workers=4 diverged",
            s.name()
        );
    }
}
