//! End-to-end integration: generate → schedule (all six algorithms) →
//! validate → bound, on every workload family, with the ratio
//! envelopes the paper reports (§4.2) asserted loosely.

use demt::prelude::*;

#[test]
fn full_pipeline_on_every_family() {
    for kind in WorkloadKind::ALL {
        for seed in 0..2 {
            let inst = generate(kind, 80, 32, seed);
            inst.check_monotonic().unwrap();
            let bounds = instance_bounds(&inst, &BoundConfig::default());
            assert!(bounds.cmax > 0.0 && bounds.minsum > 0.0);
            let dual = dual_approx(&inst, &DualConfig::default());

            let demt = demt_schedule(&inst, &DemtConfig::default());
            let schedules: Vec<(String, Schedule)> = vec![
                ("demt".into(), demt.schedule.clone()),
                ("gang".into(), gang(&inst)),
                ("sequential".into(), sequential_lptf(&inst)),
                ("list".into(), list_shelf(&inst, &dual)),
                ("lptf".into(), list_wlptf(&inst, &dual)),
                ("saf".into(), list_saf(&inst, &dual)),
            ];
            for (name, s) in &schedules {
                validate(&inst, s).unwrap_or_else(|e| panic!("{kind}/{seed}/{name}: {e}"));
                let c = Criteria::evaluate(&inst, s);
                // Certified bounds must sit below every algorithm.
                assert!(
                    c.makespan >= bounds.cmax * (1.0 - 1e-9),
                    "{kind}/{seed}/{name}: makespan {} under bound {}",
                    c.makespan,
                    bounds.cmax
                );
                assert!(
                    c.weighted_completion >= bounds.minsum * (1.0 - 1e-9),
                    "{kind}/{seed}/{name}: minsum {} under bound {}",
                    c.weighted_completion,
                    bounds.minsum
                );
            }
        }
    }
}

#[test]
fn demt_ratio_envelopes_match_the_paper() {
    // §4.2: "the performance ratio for the minsum criterion is never
    // more than 2.5 … the performance ratio for the makespan is almost
    // always below 2". Asserted with slack (3.5 / 2.6) because a single
    // run is noisier than the paper's 40-run averages.
    for kind in WorkloadKind::ALL {
        let inst = generate(kind, 150, 64, 99);
        let bounds = instance_bounds(&inst, &BoundConfig::default());
        let r = demt_schedule(&inst, &DemtConfig::default());
        let minsum_ratio = r.criteria.weighted_completion / bounds.minsum;
        let cmax_ratio = r.criteria.makespan / bounds.cmax;
        assert!(minsum_ratio < 3.5, "{kind}: minsum ratio {minsum_ratio}");
        assert!(cmax_ratio < 2.6, "{kind}: cmax ratio {cmax_ratio}");
    }
}

#[test]
fn demt_beats_lists_on_minsum_for_highly_parallel_tasks() {
    // The paper's headline claim (Fig. 4/6): on parallel-friendly
    // workloads DEMT clearly wins the minsum criterion against the list
    // baselines. Averaged over a few seeds to be robust.
    let mut demt_sum = 0.0;
    let mut list_sum = 0.0;
    let mut lptf_sum = 0.0;
    for seed in 0..4 {
        let inst = generate(WorkloadKind::HighlyParallel, 120, 48, seed);
        let dual = dual_approx(&inst, &DualConfig::default());
        let d = demt_schedule(&inst, &DemtConfig::default());
        demt_sum += d.criteria.weighted_completion;
        list_sum += Criteria::evaluate(&inst, &list_shelf(&inst, &dual)).weighted_completion;
        lptf_sum += Criteria::evaluate(&inst, &list_wlptf(&inst, &dual)).weighted_completion;
    }
    assert!(
        demt_sum < list_sum && demt_sum < lptf_sum,
        "DEMT {demt_sum} should beat list {list_sum} and lptf {lptf_sum} on minsum"
    );
}

#[test]
fn gang_dominates_nothing_but_linear_speedup() {
    // Gang is the paper's cautionary baseline: optimal for perfectly
    // moldable tasks (§3.1), catastrophic otherwise (Fig. 3).
    let mut b = InstanceBuilder::new(8);
    for i in 0..6 {
        b.push_linear(1.0 + i as f64 * 0.3, 4.0 + i as f64).unwrap();
    }
    let linear = b.build().unwrap();
    let g = Criteria::evaluate(&linear, &gang(&linear));
    let d = demt_schedule(&linear, &DemtConfig::default());
    // On linear tasks gang is minsum-optimal: DEMT cannot beat it.
    assert!(g.weighted_completion <= d.criteria.weighted_completion + 1e-6);

    // On weakly parallel tasks gang collapses.
    let weak = generate(WorkloadKind::WeaklyParallel, 60, 16, 1);
    let gw = Criteria::evaluate(&weak, &gang(&weak));
    let dw = demt_schedule(&weak, &DemtConfig::default());
    assert!(
        gw.weighted_completion > 3.0 * dw.criteria.weighted_completion,
        "gang {} vs demt {}",
        gw.weighted_completion,
        dw.criteria.weighted_completion
    );
}

#[test]
fn facade_prelude_compiles_the_quickstart_flow() {
    let inst = generate(WorkloadKind::Mixed, 20, 8, 3);
    let r = demt_schedule(&inst, &DemtConfig::default());
    assert_valid(&inst, &r.schedule);
    let chart = render_gantt(&r.schedule, 40);
    assert!(chart.lines().count() == 9);
}
