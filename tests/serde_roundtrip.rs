//! Serde interchange across crates: instances and schedules survive a
//! JSON round trip and remain mutually consistent (a schedule validated
//! before serialization validates after, against the round-tripped
//! instance).

use demt::prelude::*;

#[test]
fn instance_and_schedule_round_trip_together() {
    let inst = generate(WorkloadKind::Cirne, 25, 12, 6);
    let r = demt_schedule(&inst, &DemtConfig::default());
    validate(&inst, &r.schedule).unwrap();

    let inst_json = serde_json::to_string(&inst).unwrap();
    let sched_json = serde_json::to_string(&r.schedule).unwrap();
    let inst2: Instance = serde_json::from_str(&inst_json).unwrap();
    let sched2: Schedule = serde_json::from_str(&sched_json).unwrap();

    assert_eq!(inst, inst2);
    assert_eq!(r.schedule, sched2);
    validate(&inst2, &sched2).unwrap();
    let c1 = Criteria::evaluate(&inst, &r.schedule);
    let c2 = Criteria::evaluate(&inst2, &sched2);
    assert_eq!(c1, c2);
}

#[test]
fn workload_spec_round_trips_and_regenerates() {
    let spec = WorkloadSpec::new(WorkloadKind::Mixed, 15, 8, 123);
    let json = serde_json::to_string(&spec).unwrap();
    let spec2: WorkloadSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, spec2);
    assert_eq!(spec.generate(), spec2.generate());
}

#[test]
fn criteria_serialize_for_result_dumps() {
    let inst = generate(WorkloadKind::HighlyParallel, 10, 4, 1);
    let r = demt_schedule(&inst, &DemtConfig::default());
    let json = serde_json::to_string(&r.criteria).unwrap();
    let back: Criteria = serde_json::from_str(&json).unwrap();
    assert_eq!(r.criteria, back);
}
